"""Static analysis of performance-IR nets.

Tools (not humans) are the audience for the Petri-net representation,
and tools need sanity checks before trusting a vendor-shipped net: is it
structurally sound, can it deadlock on its own, does it conserve data
units?  This module provides the checks the paper's vision implies a
"performance IR" toolchain would run on ingestion.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from .errors import AnalysisError
from .net import PetriNet


@dataclass
class StructureReport:
    """Result of :func:`analyze_structure`."""

    place_order: list[str]
    transition_order: list[str]
    incidence: np.ndarray
    warnings: list[str] = field(default_factory=list)
    conservative: bool = False
    p_invariants: np.ndarray | None = None
    source_places: list[str] = field(default_factory=list)
    sink_places: list[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"places={len(self.place_order)} transitions={len(self.transition_order)}",
            f"sources={self.source_places} sinks={self.sink_places}",
            f"conservative={self.conservative}",
        ]
        lines.extend(f"warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def incidence_matrix(net: PetriNet) -> tuple[np.ndarray, list[str], list[str]]:
    """Return (C, places, transitions) with C[p, t] = produced - consumed.

    The incidence matrix is the standard linear-algebraic view of a
    Petri net: marking' = marking + C @ firing_counts.
    """
    places = sorted(net.places)
    transitions = [t.name for t in net.ordered_transitions()]
    p_index = {p: i for i, p in enumerate(places)}
    c = np.zeros((len(places), len(transitions)), dtype=np.int64)
    for j, tname in enumerate(transitions):
        t = net.transitions[tname]
        for arc in t.inputs:
            c[p_index[arc.place], j] -= arc.weight
        for arc in t.outputs:
            c[p_index[arc.place], j] += arc.weight
    return c, places, transitions


def p_invariants(incidence: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Left-nullspace basis of the incidence matrix (real-valued).

    Rows y with y @ C == 0 are place invariants: the weighted token sum
    y . marking is constant under any firing sequence.  A net whose
    invariants cover all places with positive weights is *conservative*:
    it can neither create nor destroy data units internally.
    """
    if incidence.size == 0:
        return np.zeros((0, incidence.shape[0]))
    # Left nullspace of C == nullspace of C.T; with C.T = U S Vt, the
    # rows of Vt beyond the rank span {y : C.T y = 0} i.e. {y : y C = 0}.
    _, s, vt = np.linalg.svd(incidence.astype(float).T)
    rank = int(np.sum(s > tol)) if s.size else 0
    return vt[rank:]


def t_invariants(incidence: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Right-nullspace basis of the incidence matrix (real-valued).

    Vectors x with C @ x == 0 are transition invariants: firing every
    transition x[t] times returns the net to its starting marking.  A
    feed-forward pipeline (inject -> ... -> sink) has none; cyclic nets
    whose cycles can actually repeat do.
    """
    if incidence.size == 0:
        return np.zeros((0, incidence.shape[1] if incidence.ndim == 2 else 0))
    _, s, vt = np.linalg.svd(incidence.astype(float))
    rank = int(np.sum(s > tol)) if s.size else 0
    return vt[rank:]


def covers_all_positive(invariants: np.ndarray, tol: float = 1e-9) -> bool:
    """True when some basis row is strictly one-signed on every entry.

    SVD returns basis vectors with arbitrary overall sign, so an
    all-negative row is the same invariant as its all-positive mirror;
    either proves a positive P-invariant covering all places exists.
    """
    return any(
        np.all(row > tol) or np.all(row < -tol) for row in invariants
    )


def maximal_siphon(net: PetriNet, excluded: Iterable[str] = ()) -> set[str]:
    """Largest siphon of ``net`` disjoint from the ``excluded`` places.

    A *siphon* is a place set S such that every transition producing
    into S also consumes from S — once S is empty it stays empty
    forever.  Since nets here start empty and gain tokens only through
    external injection, the maximal siphon avoiding the injection
    places is exactly the set of places that can never hold a token;
    any transition consuming from it is structurally dead.

    Fault arcs count as production: a transition's timeout place can
    receive tokens even though no ordinary arc points at it.

    Uses the standard fixpoint: start from all non-excluded places and
    discard any place one of whose producers takes no input from the
    remaining set.  Runs in O(places * arcs).
    """
    siphon = set(net.places) - set(excluded)
    producers: dict[str, list[set[str]]] = {p: [] for p in net.places}
    for t in net.transitions.values():
        inputs = {a.place for a in t.inputs}
        for arc in t.outputs:
            producers[arc.place].append(inputs)
        if t.timeout is not None:
            producers[t.timeout[1]].append(inputs)
    changed = True
    while changed:
        changed = False
        for place in sorted(siphon):
            for inputs in producers[place]:
                if not inputs & siphon:
                    siphon.discard(place)
                    changed = True
                    break
    return siphon


def analyze_structure(net: PetriNet) -> StructureReport:
    """Run all static checks and return a consolidated report."""
    c, places, transitions = incidence_matrix(net)
    warnings = net.validate()

    consumed = set()
    produced = set()
    for t in net.transitions.values():
        consumed.update(a.place for a in t.inputs)
        produced.update(a.place for a in t.outputs)
    sources = sorted(p for p in net.places if p not in produced)
    sinks = sorted(p for p in net.places if p not in consumed)

    inv = p_invariants(c) if c.size else None
    conservative = inv is not None and covers_all_positive(inv)

    return StructureReport(
        place_order=places,
        transition_order=transitions,
        incidence=c,
        warnings=warnings,
        conservative=conservative,
        p_invariants=inv,
        source_places=sources,
        sink_places=sinks,
    )


class CycleList(list):
    """``find_cycles`` result: a plain list of cycles, plus a
    ``truncated`` flag that is True when the depth bound cut the search
    short (cycles longer than the bound may exist but are not listed)."""

    def __init__(self, cycles: Iterable[list[str]] = (), truncated: bool = False):
        super().__init__(cycles)
        self.truncated = truncated


def find_cycles(
    net: PetriNet,
    *,
    max_depth: int = 64,
    on_truncate: str = "mark",
) -> CycleList:
    """Enumerate simple cycles in the place/transition bipartite graph.

    Cycles are legitimate (they model credit/ring buffers) but a cycle
    with no initial tokens and no external injection point deadlocks, so
    interface authors want to see them listed.

    The DFS bounds its path length at ``max_depth`` nodes to stay
    polynomial on pathological nets.  When the bound actually prunes a
    path, the result's ``truncated`` attribute is set — or, with
    ``on_truncate="raise"``, :class:`~repro.petri.errors.AnalysisError`
    is raised — so callers can no longer mistake a truncated listing
    for a complete one.
    """
    if on_truncate not in ("mark", "raise"):
        raise ValueError(f"on_truncate must be 'mark' or 'raise', not {on_truncate!r}")
    graph: dict[str, set[str]] = {}
    for t in net.transitions.values():
        tnode = f"t:{t.name}"
        graph.setdefault(tnode, set())
        for arc in t.inputs:
            graph.setdefault(f"p:{arc.place}", set()).add(tnode)
        for arc in t.outputs:
            graph[tnode].add(f"p:{arc.place}")
            graph.setdefault(f"p:{arc.place}", set())

    cycles: list[list[str]] = []
    seen_cycles: set[tuple[str, ...]] = set()
    truncated = False

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        nonlocal truncated
        for nxt in sorted(graph.get(node, ())):
            if nxt in on_path:
                idx = path.index(nxt)
                cyc = path[idx:]
                key = _canonical(cyc)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append([n.split(":", 1)[1] for n in cyc])
            elif len(path) < max_depth:
                path.append(nxt)
                on_path.add(nxt)
                dfs(nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()
            else:
                truncated = True

    for start in sorted(graph):
        dfs(start, [start], {start})
    if truncated and on_truncate == "raise":
        raise AnalysisError(
            f"cycle search on net {net.name!r} truncated at depth {max_depth}; "
            f"{len(cycles)} cycles found before the bound"
        )
    return CycleList(cycles, truncated=truncated)


def _canonical(cycle: list[str]) -> tuple[str, ...]:
    """Rotation-invariant key for a cycle."""
    best = None
    for i in range(len(cycle)):
        rot = tuple(cycle[i:] + cycle[:i])
        if best is None or rot < best:
            best = rot
    return best or ()


def bottleneck_estimate(net: PetriNet) -> dict[str, float]:
    """Per-transition saturated service demand after a simulation run.

    Must be called after a :class:`~repro.petri.simulate.Simulator` run;
    uses the busy-time statistics the simulator maintains.  The
    transition with the highest busy time is the throughput bottleneck
    under the simulated workload — the piece of information the paper's
    Protoacc interface surfaces as "which stage bottlenecks a message".
    """
    return {name: t.busy_time for name, t in net.transitions.items()}
