"""Static analysis of performance-IR nets.

Tools (not humans) are the audience for the Petri-net representation,
and tools need sanity checks before trusting a vendor-shipped net: is it
structurally sound, can it deadlock on its own, does it conserve data
units?  This module provides the checks the paper's vision implies a
"performance IR" toolchain would run on ingestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .net import PetriNet


@dataclass
class StructureReport:
    """Result of :func:`analyze_structure`."""

    place_order: list[str]
    transition_order: list[str]
    incidence: np.ndarray
    warnings: list[str] = field(default_factory=list)
    conservative: bool = False
    p_invariants: np.ndarray | None = None
    source_places: list[str] = field(default_factory=list)
    sink_places: list[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"places={len(self.place_order)} transitions={len(self.transition_order)}",
            f"sources={self.source_places} sinks={self.sink_places}",
            f"conservative={self.conservative}",
        ]
        lines.extend(f"warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def incidence_matrix(net: PetriNet) -> tuple[np.ndarray, list[str], list[str]]:
    """Return (C, places, transitions) with C[p, t] = produced - consumed.

    The incidence matrix is the standard linear-algebraic view of a
    Petri net: marking' = marking + C @ firing_counts.
    """
    places = sorted(net.places)
    transitions = [t.name for t in net.ordered_transitions()]
    p_index = {p: i for i, p in enumerate(places)}
    c = np.zeros((len(places), len(transitions)), dtype=np.int64)
    for j, tname in enumerate(transitions):
        t = net.transitions[tname]
        for arc in t.inputs:
            c[p_index[arc.place], j] -= arc.weight
        for arc in t.outputs:
            c[p_index[arc.place], j] += arc.weight
    return c, places, transitions


def p_invariants(incidence: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Left-nullspace basis of the incidence matrix (real-valued).

    Rows y with y @ C == 0 are place invariants: the weighted token sum
    y . marking is constant under any firing sequence.  A net whose
    invariants cover all places with positive weights is *conservative*:
    it can neither create nor destroy data units internally.
    """
    if incidence.size == 0:
        return np.zeros((0, incidence.shape[0]))
    # Left nullspace of C == nullspace of C.T; with C.T = U S Vt, the
    # rows of Vt beyond the rank span {y : C.T y = 0} i.e. {y : y C = 0}.
    _, s, vt = np.linalg.svd(incidence.astype(float).T)
    rank = int(np.sum(s > tol)) if s.size else 0
    return vt[rank:]


def analyze_structure(net: PetriNet) -> StructureReport:
    """Run all static checks and return a consolidated report."""
    c, places, transitions = incidence_matrix(net)
    warnings = net.validate()

    consumed = set()
    produced = set()
    for t in net.transitions.values():
        consumed.update(a.place for a in t.inputs)
        produced.update(a.place for a in t.outputs)
    sources = sorted(p for p in net.places if p not in produced)
    sinks = sorted(p for p in net.places if p not in consumed)

    inv = p_invariants(c) if c.size else None
    conservative = False
    if inv is not None and inv.shape[0] > 0:
        for row in inv:
            if np.all(row > 1e-9) or np.all(row < -1e-9):
                conservative = True
                break

    return StructureReport(
        place_order=places,
        transition_order=transitions,
        incidence=c,
        warnings=warnings,
        conservative=conservative,
        p_invariants=inv,
        source_places=sources,
        sink_places=sinks,
    )


def find_cycles(net: PetriNet) -> list[list[str]]:
    """Enumerate simple cycles in the place/transition bipartite graph.

    Cycles are legitimate (they model credit/ring buffers) but a cycle
    with no initial tokens and no external injection point deadlocks, so
    interface authors want to see them listed.
    """
    graph: dict[str, set[str]] = {}
    for t in net.transitions.values():
        tnode = f"t:{t.name}"
        graph.setdefault(tnode, set())
        for arc in t.inputs:
            graph.setdefault(f"p:{arc.place}", set()).add(tnode)
        for arc in t.outputs:
            graph[tnode].add(f"p:{arc.place}")
            graph.setdefault(f"p:{arc.place}", set())

    cycles: list[list[str]] = []
    seen_cycles: set[tuple[str, ...]] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt in on_path:
                idx = path.index(nxt)
                cyc = path[idx:]
                key = _canonical(cyc)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append([n.split(":", 1)[1] for n in cyc])
            elif len(path) < 64:
                path.append(nxt)
                on_path.add(nxt)
                dfs(nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for start in sorted(graph):
        dfs(start, [start], {start})
    return cycles


def _canonical(cycle: list[str]) -> tuple[str, ...]:
    """Rotation-invariant key for a cycle."""
    best = None
    for i in range(len(cycle)):
        rot = tuple(cycle[i:] + cycle[:i])
        if best is None or rot < best:
            best = rot
    return best or ()


def bottleneck_estimate(net: PetriNet) -> dict[str, float]:
    """Per-transition saturated service demand after a simulation run.

    Must be called after a :class:`~repro.petri.simulate.Simulator` run;
    uses the busy-time statistics the simulator maintains.  The
    transition with the highest busy time is the throughput bottleneck
    under the simulated workload — the piece of information the paper's
    Protoacc interface surfaces as "which stage bottlenecks a message".
    """
    return {name: t.busy_time for name, t in net.transitions.items()}
