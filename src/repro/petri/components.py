"""Reusable performance-IR components (paper §5).

"One possible solution … could be to develop individual Petri nets for
such components once and reuse them across multiple accelerators."
This module provides those building blocks: structural idioms that
recur in every accelerator net we wrote by hand — mutex resources,
FCFS-arbitrated shared ports, and bounded pipelines — packaged so a new
interface author composes rather than rediscovers them.

Each helper mutates a net under construction and returns the names it
created; companion ``*_injections`` helpers produce the initial tokens
the component needs at simulation time.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from .errors import DefinitionError
from .net import DelaySpec, PetriNet
from .token import Token


def add_mutex(net: PetriNet, name: str) -> str:
    """A serialization resource: a place meant to hold exactly one token.

    Transitions that need the resource list the place in *both* their
    inputs and outputs.  The place is unbounded on purpose: a capacity-1
    self-loop could never reserve output space under reserve-at-start
    semantics (see the VTA interface for the original discussion).
    """
    net.add_place(name)
    return name


def mutex_injections(names: Sequence[str]) -> list[tuple[str, Token]]:
    """Initial marking for mutexes: one token each, at time zero."""
    return [(name, Token(payload=None)) for name in names]


def add_fcfs_port(
    net: PetriNet,
    name: str,
    *,
    users: Mapping[str, DelaySpec],
    done_place: str,
    classify: Callable[[Mapping], str] | None = None,
) -> dict[str, str]:
    """A shared port granted in request order across independent users.

    Creates a request place ``<name>_req`` (FIFO across all users — the
    arbitration) and a grant mutex ``<name>``.  For each user class a
    grant transition consumes ``[<name>_req, <name>]`` and produces
    ``[<name>, done_place]`` with that user's service delay.  When
    several user classes share the request place, ``classify`` maps the
    consumed tokens to a class name and each grant transition guards on
    it (tokens must carry enough payload to classify).

    Returns ``{"request": ..., "grant": ...}`` place names.  Requesters
    deposit tokens into the request place (usually as the output of an
    upstream transition); the caller injects the grant token via
    :func:`mutex_injections`.
    """
    if not users:
        raise DefinitionError("fcfs port needs at least one user class")
    req = net.add_place(f"{name}_req").name
    add_mutex(net, name)
    for user, delay in users.items():
        guard = None
        if classify is not None:
            def guard(consumed, user=user):  # noqa: E306
                return classify(consumed) == user

        net.add_transition(
            f"{name}_grant_{user}",
            [req, name],
            [name, done_place],
            delay=delay,
            guard=guard,
            servers=1,
        )
    return {"request": req, "grant": name}


def add_bounded_stage(
    net: PetriNet,
    name: str,
    source: str,
    sink: str,
    *,
    delay: DelaySpec,
    queue_capacity: int | None = None,
    servers: int | None = 1,
) -> str:
    """One pipeline stage with an optional bounded input queue.

    If ``queue_capacity`` is given, a queue place ``q_<name>`` is
    inserted between ``source`` and the stage via a zero-delay mover
    (modeling a FIFO whose fullness backpressures the producer).
    """
    upstream = source
    if queue_capacity is not None:
        q = net.add_place(f"q_{name}", capacity=queue_capacity).name
        net.add_transition(f"enq_{name}", [source], [q], delay=0.0, servers=None)
        upstream = q
    net.add_transition(name, [upstream], [sink], delay=delay, servers=servers)
    return name
