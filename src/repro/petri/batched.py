"""Mega-batch evaluation: lower a net once, evaluate thousands of items.

The compiled engine (:mod:`repro.petri.compiled`) made one simulation
cheap; sweep-shaped consumers — validation, autotuning, capacity
planning, ``interface_predicted`` pricing — still paid the *per-item
dispatch* cost on every point: a fresh :class:`CompiledNet` lowering,
fresh run-state construction, a full ``SimResult`` with ``Completion``
objects, and a write-back into the net, per workload item.  For the
small nets accelerator interfaces actually ship, that fixed cost
dwarfs the event loop.

This module evaluates an entire matrix of workload items against one
net in a single pass.  Two engines, selected per net:

* **codegen** — for the dominant shipped-net shape (a feed-forward
  chain of single-input/single-output, single-server, guardless
  transitions: JPEG, Protoacc, Optimus Prime, bitcoin), the simulation
  collapses to a per-token recurrence::

      fire[i][s]  = max(done[i][s-1], done[i-1][s], fire[i-K_s][s+1])
      done[i][s]  = fire[i][s] + delay(token_i)

  (arrival, single server frees, reserve-at-start backpressure with
  output capacity ``K_s``).  The recurrence is emitted as straight-line
  Python specialized to the net — no event heap, no deques, no Token
  churn — and executed per item.

* **columnar** — the general fallback: the compiled event loop over
  flat arc tuples, but with the lowering, wake masks, guard slots and
  sink tables hoisted out of the per-item path and the per-item
  products (``SimResult``, ``Completion``, write-back, tracer branch)
  stripped to plain floats and counters.

Both engines are **bit-identical** to :class:`CompiledSimulator` per
item — same completion times, fired counts, deadlock flags, and error
types/messages — and :mod:`repro.petri.differential` asserts it on
every accelerator net and on seeded random structural nets.  The
recurrence inherits the compiled engine's contract that guard/delay
callables are pure functions of the peeked tokens' payloads.

Batch runs are plain quiescent runs: no ``until``/``max_time``
watchdogs (per-item deadline control still goes through the per-item
engines).
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any

from .compiled import CompiledNet, unsupported_features
from .dsl import _SAFE_GLOBALS
from .errors import CapacityError, DefinitionError, SimulationError
from .net import PetriNet
from .simulate import Simulator
from .token import Token, _token_ids

#: Batch engine selector values (``auto`` = codegen when the net is a
#: supported chain, columnar otherwise).
BATCH_ENGINES: tuple[str, ...] = ("auto", "codegen", "columnar")

#: Environment override for the default batch engine (the differential
#: harness forces each engine in turn through this).
BATCH_ENGINE_ENV_VAR = "REPRO_PETRI_BATCH_ENGINE"

_COMPLETE, _FAIL = 1, 2


def default_batch_engine() -> str:
    """Session-wide batch engine: ``$REPRO_PETRI_BATCH_ENGINE`` or auto."""
    engine = os.environ.get(BATCH_ENGINE_ENV_VAR, "auto")
    if engine not in BATCH_ENGINES:
        raise ValueError(
            f"{BATCH_ENGINE_ENV_VAR}={engine!r} is not one of {', '.join(BATCH_ENGINES)}"
        )
    return engine


class BatchItemResult:
    """One item's outcome inside a batch run.

    A trimmed :class:`~repro.petri.simulate.SimResult`: everything a
    sweep consumer reads (makespan, per-sink completion counts, flags),
    nothing a sweep consumer allocates and throws away (``Completion``
    objects, per-token latencies).  ``completion_times`` and ``fired``
    are populated only when the batch ran with ``collect=True`` (the
    differential harness does; the hot path does not).
    """

    __slots__ = (
        "makespan",
        "end_time",
        "counts",
        "first_injection",
        "deadlocked",
        "residual_tokens",
        "completion_times",
        "fired",
    )

    def __init__(
        self,
        makespan: float,
        end_time: float,
        counts: dict[str, int],
        first_injection: float | None,
        deadlocked: bool = False,
        residual_tokens: int = 0,
        completion_times: dict[str, list[float]] | None = None,
        fired: dict[str, int] | None = None,
    ):
        self.makespan = makespan
        self.end_time = end_time
        self.counts = counts
        self.first_injection = first_injection
        self.deadlocked = deadlocked
        self.residual_tokens = residual_tokens
        self.completion_times = completion_times
        self.fired = fired

    @property
    def total_completions(self) -> int:
        return sum(self.counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchItemResult(makespan={self.makespan}, "
            f"counts={self.counts}, deadlocked={self.deadlocked})"
        )


# ----------------------------------------------------------------------
# Chain detection (the codegen-supported shape)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChainSpec:
    """A net proven to be a codegen-supported feed-forward chain."""

    entry: str
    sink: str
    stage_names: tuple[str, ...]
    in_names: tuple[str, ...]  # input place of each stage
    delay_consts: tuple[float | None, ...]
    delay_fns: tuple[Any, ...]
    delay_srcs: tuple[str | None, ...]  # inlinable DSL source per stage
    out_caps: tuple[int | None, ...]  # capacity of each stage's output place


def chain_unsupported_reasons(net: PetriNet, sinks: Sequence[str] = ("out",)) -> list[str]:
    """Why the codegen engine cannot run ``net`` (empty list = it can)."""
    reasons = unsupported_features(net)
    if reasons:
        return reasons
    if len(sinks) != 1:
        return [f"codegen needs exactly one sink (got {list(sinks)!r})"]
    sink = sinks[0]
    c = CompiledNet(net)
    n_places = len(c.place_names)
    # Per-transition shape checks.
    for ti, name in enumerate(c.t_names):
        if len(c.t_in[ti]) != 1 or c.t_in[ti][0][1] != 1:
            reasons.append(f"transition {name!r} is not single-input weight-1")
        elif len(c.t_out[ti]) != 1 or c.t_out[ti][0][1] != 1:
            reasons.append(f"transition {name!r} is not single-output weight-1")
        elif c.t_guard[ti] is not None:
            reasons.append(f"transition {name!r} has a guard")
        elif c.t_servers[ti] != 1:
            reasons.append(f"transition {name!r} is not single-server")
        elif c.t_timeout_after[ti] is not None:
            reasons.append(f"transition {name!r} has a timeout fault arc")
        elif (
            len(c.t_out[ti]) == 1
            and (cap := c.capacity[c.t_out[ti][0][0]]) is not None
            and cap < 1
        ):
            reasons.append(
                f"place {c.place_names[c.t_out[ti][0][0]]!r} has capacity {cap} (< 1)"
            )
        elif c.t_delay_const[ti] is not None and c.t_delay_const[ti] <= 0:
            # Zero-delay stages can cascade unboundedly within one
            # instant (the engines' firing budget applies); negative
            # constants raise at first firing.  Both stay on columnar.
            reasons.append(f"transition {name!r} has a non-positive constant delay")
    if reasons:
        return reasons
    # Topology: one entry, one sink, a single linear chain covering
    # every place and transition.
    entries = [
        i
        for i in range(n_places)
        if not c.producers[i] and c.consumers[i]
    ]
    if len(entries) != 1:
        return ["net does not have exactly one entry place"]
    entry = entries[0]
    if c.place_names[entry] == sink:
        return ["entry place is the sink"]
    if c.capacity[entry] is not None:
        return [f"entry place {c.place_names[entry]!r} has finite capacity"]
    if sink not in c.place_index:
        return [f"sink {sink!r} is not a place of net {net.name!r}"]
    sink_idx = c.place_index[sink]
    if c.consumers[sink_idx]:
        return [f"sink {sink!r} has consumers"]
    if c.capacity[sink_idx] is not None:
        return [f"sink place {sink!r} has finite capacity"]
    order: list[int] = []
    place = entry
    seen_places = {entry}
    while place != sink_idx:
        cons = c.consumers[place]
        if len(cons) != 1:
            return [f"place {c.place_names[place]!r} has {len(cons)} consumers (need 1)"]
        ti = cons[0]
        if len(c.producers[place]) > (0 if place == entry else 1):
            return [f"place {c.place_names[place]!r} has multiple producers"]
        order.append(ti)
        place = c.t_out[ti][0][0]
        if place in seen_places:
            return ["net has a cycle"]
        seen_places.add(place)
    if len(order) != len(c.t_names):
        return ["net has transitions outside the entry->sink chain"]
    if len(seen_places) != n_places:
        return ["net has places outside the entry->sink chain"]
    return []


def chain_spec(net: PetriNet, sinks: Sequence[str] = ("out",)) -> ChainSpec | None:
    """The :class:`ChainSpec` for ``net``, or ``None`` when unsupported."""
    if chain_unsupported_reasons(net, sinks):
        return None
    c = CompiledNet(net)
    sink_idx = c.place_index[sinks[0]]
    entry = next(
        i for i in range(len(c.place_names)) if not c.producers[i] and c.consumers[i]
    )
    order: list[int] = []
    place = entry
    while place != sink_idx:
        ti = c.consumers[place][0]
        order.append(ti)
        place = c.t_out[ti][0][0]
    return ChainSpec(
        entry=c.place_names[entry],
        sink=sinks[0],
        stage_names=tuple(c.t_names[ti] for ti in order),
        in_names=tuple(c.t_in_names[ti][0] for ti in order),
        delay_consts=tuple(c.t_delay_const[ti] for ti in order),
        delay_fns=tuple(c.t_delay_fn[ti] for ti in order),
        delay_srcs=tuple(_inlinable_src(c.t_delay_fn[ti]) for ti in order),
        out_caps=tuple(c.capacity[c.t_out[ti][0][0]] for ti in order),
    )


def _inlinable_src(fn: Any) -> str | None:
    """The DSL source of a delay callable, when it can be textually
    inlined into generated code.

    A ``.pnet`` ``expr:`` evaluates its source with ``tok`` bound to the
    head token's payload and the fixed safe-globals in scope.  When the
    expression references only those names (and not ``toks``, the full
    consumed mapping), evaluating the same source against the same
    payload under the same globals is the same computation — so the
    generated loop can run it without the per-firing callable dispatch,
    Token mutation, or consumed-dict plumbing.
    """
    if fn is None:
        return None
    src = getattr(fn, "src", None)
    if not isinstance(src, str):
        return None
    try:
        code = compile(src, "<inline-check>", "eval")
    except SyntaxError:  # pragma: no cover - DSL already validated it
        return None
    names = set(code.co_names)
    if "toks" in names or not names <= (set(_SAFE_GLOBALS) | {"tok"}):
        return None
    return src


def codegen_supported(net: PetriNet, sinks: Sequence[str] = ("out",)) -> bool:
    """True when the codegen batch engine can run ``net`` exactly."""
    return not chain_unsupported_reasons(net, sinks)


# ----------------------------------------------------------------------
# Codegen engine: straight-line per-net recurrence
# ----------------------------------------------------------------------


class _ZeroDelayBailout(Exception):
    """A callable delay returned 0.0: the item falls back to the event
    loop, whose per-instant firing budget the recurrence cannot model."""


def _codegen_source(spec: ChainSpec) -> str:
    """Emit the specialized per-item runner for a chain net.

    The generated function takes ``(injections, collect)`` where
    ``injections`` is a list of ``(payload, at)`` pairs sorted by
    ``at`` (ties keep injection order, matching the engines' (at, uid)
    ordering), and returns ``(makespan, n, first_at, times)``.
    """
    n_stages = len(spec.stage_names)
    lines = [
        "def _run_item(injections, collect):",
        "    n = len(injections)",
        "    if n == 0:",
        "        return (0.0, 0, None, [] if collect else None)",
        "    first_at = injections[0][1]",
        "    if first_at < 0.0:",
        "        raise SimulationError(",
        "            f'event scheduled in the past ({first_at} < 0.0)'",
        "        )",
        "    times = [] if collect else None",
        "    c = 0.0",
    ]
    # One rolled ring cursor per distinct capacity (cheaper than idx % K
    # per stage per token).
    ring_caps = sorted({k for k in spec.out_caps if k is not None})
    for k in ring_caps:
        lines.append(f"    i{k} = 0")
    for s in range(n_stages):
        lines.append(f"    done{s} = 0.0")
        if spec.out_caps[s] is not None:
            lines.append(f"    ring{s} = [0.0] * {spec.out_caps[s]}")
    inline_any = any(src is not None for src in spec.delay_srcs)
    lines.append("    for payload, at in injections:")
    lines.append("        c = at")
    if inline_any:
        lines.append("        tok = payload")
    for s in range(n_stages):
        lines.append(f"        # stage {s}: {spec.stage_names[s]}")
        lines.append("        f = c")
        lines.append(f"        if done{s} > f: f = done{s}")
        if spec.out_caps[s] is not None:
            lines.append(f"        r = ring{s}[i{spec.out_caps[s]}]")
            lines.append("        if r > f: f = r")
        if s >= 1 and spec.out_caps[s - 1] is not None:
            # f is this stage's fire time == when it consumes from the
            # upstream place, freeing one capacity slot there.
            lines.append(f"        ring{s - 1}[i{spec.out_caps[s - 1]}] = f")
        if spec.delay_fns[s] is None:
            lines.append(f"        c = f + {spec.delay_consts[s]!r}")
        else:
            if spec.delay_srcs[s] is not None:
                lines.append(f"        d = float(({spec.delay_srcs[s]}))")
            else:
                lines.append(f"        tok{s}.payload = payload")
                lines.append(f"        tok{s}.born = at")
                lines.append(f"        d = float(delay{s}(consumed{s}))")
            msg = f"transition {spec.stage_names[s]!r} computed a negative delay"
            lines.append("        if d < 0.0:")
            lines.append(f"            raise DefinitionError({msg!r})")
            lines.append("        if d == 0.0:")
            lines.append("            raise _ZeroDelayBailout")
            lines.append("        c = f + d")
        lines.append(f"        done{s} = c")
    lines.append("        if collect:")
    lines.append("            times.append(c)")
    for k in ring_caps:
        lines.append(f"        i{k} += 1")
        lines.append(f"        if i{k} == {k}: i{k} = 0")
    lines.append("    return (c, n, first_at, times)")
    return "\n".join(lines)


class _CodegenRunner:
    """Executes the generated recurrence for one chain net."""

    def __init__(self, spec: ChainSpec):
        self.spec = spec
        self.source = _codegen_source(spec)
        namespace: dict[str, Any] = {
            # The exact objects DSL expressions evaluate against, so an
            # inlined ``expr:`` computes bit-identical floats.
            **{k: v for k, v in _SAFE_GLOBALS.items() if k != "__builtins__"},
            "__builtins__": {},
            "SimulationError": SimulationError,
            "DefinitionError": DefinitionError,
            "_ZeroDelayBailout": _ZeroDelayBailout,
            "float": float,
            "len": len,
        }
        for s, fn in enumerate(spec.delay_fns):
            if fn is None or spec.delay_srcs[s] is not None:
                continue
            tok = Token.__new__(Token)
            tok.payload = None
            tok.born = None
            tok.uid = next(_token_ids)
            tok.trace = None
            namespace[f"delay{s}"] = fn
            namespace[f"tok{s}"] = tok
            namespace[f"consumed{s}"] = {spec.in_names[s]: [tok]}
        exec(compile(self.source, f"<batched:{spec.sink}>", "exec"), namespace)
        self._run_item = namespace["_run_item"]

    def run_item(
        self, injections: list[tuple[Any, float]], collect: bool
    ) -> BatchItemResult:
        makespan, n, first_at, times = self._run_item(injections, collect)
        return BatchItemResult(
            makespan=makespan,
            end_time=makespan,
            counts={self.spec.sink: n},
            first_injection=first_at,
            completion_times={self.spec.sink: times} if collect else None,
            fired=dict.fromkeys(self.spec.stage_names, n) if collect else None,
        )


# ----------------------------------------------------------------------
# Columnar engine: the compiled event loop, amortized
# ----------------------------------------------------------------------


class _ColumnarRunner:
    """Per-item event loop with every per-net cost hoisted out.

    The loop body mirrors :meth:`CompiledSimulator.run` — the parity
    contract depends on it — minus tracer branches, ``Completion``/
    ``SimResult`` construction, and net write-back.  Completion times
    are plain floats; fired counts plain ints.
    """

    MAX_FIRINGS_PER_INSTANT = Simulator.MAX_FIRINGS_PER_INSTANT

    def __init__(self, compiled: CompiledNet, sinks: Sequence[str]):
        self.c = compiled
        self.sinks = list(sinks)
        c = compiled
        for s in sinks:
            if s not in c.place_index:
                raise SimulationError(
                    f"sink {s!r} is not a place of net {c.net.name!r}"
                )
        sink_set = {c.place_index[s] for s in sinks}
        #: per-place: sink slot index or -1.
        self.sink_slot = [
            self.sinks.index(c.place_names[p]) if p in sink_set else -1
            for p in range(len(c.place_names))
        ]
        # Same wake/guard precomputation as CompiledSimulator.run, but
        # per *net* instead of per item.
        self.wake_done: list[int] = []
        self.guard_slots: list[list[Token | None] | None] = []
        self.guard_dicts: list[dict[str, list[Token | None]] | None] = []
        for ti in range(len(c.t_names)):
            ow = c.t_outw[ti]
            if ow is None:
                self.wake_done.append(1 << ti)
            else:
                p, _ = ow
                base = (
                    c.producers_mask[p]
                    if self.sink_slot[p] >= 0
                    else c.consumers_mask[p]
                )
                self.wake_done.append(base | (1 << ti))
            fast = c.t_fast[ti]
            if fast is not None and fast[1] == 1 and (
                fast[5] is not None or fast[6] is not None
            ):
                slot: list[Token | None] = [None]
                self.guard_slots.append(slot)
                self.guard_dicts.append({fast[4]: slot})
            else:
                self.guard_slots.append(None)
                self.guard_dicts.append(None)

    def run_item(
        self, injections: list[tuple[int, Any, float]], collect: bool
    ) -> BatchItemResult:
        """One quiescent run.  ``injections`` are ``(place_idx, payload,
        at)`` triples in injection order."""
        c = self.c
        n_places = len(c.place_names)
        n_trans = len(c.t_names)
        sink_slot = self.sink_slot

        tokens: list[deque[Token]] = [deque() for _ in range(n_places)]
        reserved = [0] * n_places
        busy = [0] * n_trans
        fire_count = [0] * n_trans
        comp_counts = [0] * len(self.sinks)
        comp_times: list[list[float]] | None = (
            [[] for _ in self.sinks] if collect else None
        )
        last_completion = 0.0

        events: list[tuple[float, int, int, int, Token | None, float]] = []
        seq = 0
        now = 0.0
        dirty = 0

        t_in, t_out = c.t_in, c.t_out
        t_in_names = c.t_in_names
        t_delay_const, t_delay_fn = c.t_delay_const, c.t_delay_fn
        t_guard, t_servers = c.t_guard, c.t_servers
        t_timeout_after, t_timeout_place = c.t_timeout_after, c.t_timeout_place
        consumers_mask, producers_mask = c.consumers_mask, c.producers_mask
        capacity = c.capacity
        place_names = c.place_names
        t_names = c.t_names
        t_wake_fire, t_fast = c.t_wake_fire, c.t_fast
        t_out1, t_outw = c.t_out1, c.t_outw
        wake_done = self.wake_done
        guard_slots, guard_dicts = self.guard_slots, self.guard_dicts
        new_token = Token.__new__
        next_uid = _token_ids.__next__
        net_name = c.net.name

        # Materialize tokens in injection order (uid order) then order
        # by arrival, exactly like CompiledSimulator's (at, uid) sort.
        inj: list[tuple[float, int, Token]] = []
        for place_idx, payload, at in injections:
            if isinstance(payload, Token):
                token = payload
            else:
                token = new_token(Token)
                token.payload = payload
                token.born = None
                token.uid = next_uid()
                token.trace = None
            inj.append((at, place_idx, token))
        # Same (at, uid) arrival order as CompiledSimulator's side list.
        inj.sort(key=lambda e: (e[0], e[2].uid))
        first_injection = inj[0][0] if inj else None
        if inj and inj[0][0] < now:
            raise SimulationError(
                f"event scheduled in the past ({inj[0][0]} < {now})"
            )
        inj_i, inj_n = 0, len(inj)

        budget = self.MAX_FIRINGS_PER_INSTANT

        def fire_all() -> None:
            nonlocal seq, dirty
            fired = 0
            while dirty:
                batch = dirty
                dirty = 0
                while batch:
                    low = batch & -batch
                    batch -= low
                    ti = low.bit_length() - 1
                    fast = t_fast[ti]
                    if fast is not None:
                        dq = tokens[fast[0]]
                        if len(dq) < fast[1]:
                            continue
                        servers = t_servers[ti]
                        if servers is not None and busy[ti] >= servers:
                            continue
                        if fast[9]:
                            p_out = fast[2]
                            delay_c = fast[7]
                            wake = fast[8]
                            cap = capacity[p_out]
                            out_dq = tokens[p_out]
                            while (
                                dq
                                and (servers is None or busy[ti] < servers)
                                and (
                                    cap is None
                                    or cap - len(out_dq) - reserved[p_out] >= 1
                                )
                            ):
                                first = dq.popleft()
                                reserved[p_out] += 1
                                dirty |= wake
                                busy[ti] += 1
                                fire_count[ti] += 1
                                fired += 1
                                if fired > budget:
                                    raise SimulationError(
                                        f"net {net_name!r}: more than {budget} "
                                        f"firings at t={now}; likely a zero-delay loop"
                                    )
                                heappush(
                                    events,
                                    (now + delay_c, seq, _COMPLETE, ti, first, now),
                                )
                                seq += 1
                            continue
                        _, w_in, p_out, w_out, in_name, guard, delay_fn, delay_c, wake, _ = fast
                        cap = capacity[p_out]
                        out_dq = tokens[p_out]
                        while (
                            len(dq) >= w_in
                            and (servers is None or busy[ti] < servers)
                            and (
                                cap is None
                                or cap - len(out_dq) - reserved[p_out] >= w_out
                            )
                        ):
                            if guard is not None or delay_fn is not None:
                                slot = guard_slots[ti]
                                if slot is not None:
                                    slot[0] = dq[0]
                                    consumed = guard_dicts[ti]
                                else:
                                    consumed = {
                                        in_name: [dq[i] for i in range(w_in)]
                                    }
                                if guard is not None and not guard(consumed):
                                    break
                            first = dq.popleft()
                            if w_in != 1:
                                for _ in range(w_in - 1):
                                    dq.popleft()
                            reserved[p_out] += w_out
                            dirty |= wake
                            if delay_fn is None:
                                delay = delay_c
                            else:
                                delay = float(delay_fn(consumed))
                                if delay < 0:
                                    raise DefinitionError(
                                        f"transition {t_names[ti]!r} computed "
                                        "a negative delay"
                                    )
                            busy[ti] += 1
                            fire_count[ti] += 1
                            fired += 1
                            if fired > budget:
                                raise SimulationError(
                                    f"net {net_name!r}: more than {budget} "
                                    f"firings at t={now}; likely a zero-delay loop"
                                )
                            heappush(
                                events, (now + delay, seq, _COMPLETE, ti, first, now)
                            )
                            seq += 1
                        continue
                    servers = t_servers[ti]
                    guard = t_guard[ti]
                    delay_fn = t_delay_fn[ti]
                    ins = t_in[ti]
                    outs = t_out[ti]
                    while True:
                        if servers is not None and busy[ti] >= servers:
                            break
                        enabled = True
                        for p, w in ins:
                            if len(tokens[p]) < w:
                                enabled = False
                                break
                        if enabled:
                            for p, w in outs:
                                cap = capacity[p]
                                if (
                                    cap is not None
                                    and cap - len(tokens[p]) - reserved[p] < w
                                ):
                                    enabled = False
                                    break
                        if not enabled:
                            break
                        consumed = None
                        if guard is not None or delay_fn is not None:
                            names = t_in_names[ti]
                            consumed = {}
                            for (p, w), name in zip(ins, names, strict=True):
                                dq = tokens[p]
                                consumed[name] = (
                                    [dq[0]] if w == 1 else [dq[i] for i in range(w)]
                                )
                            if guard is not None and not guard(consumed):
                                break
                        first = None
                        for p, w in ins:
                            dq = tokens[p]
                            if len(dq) < w:
                                raise ValueError(
                                    f"place {place_names[p]!r} holds fewer than "
                                    f"{w} tokens"
                                )
                            if first is None:
                                first = dq[0]
                            for _ in range(w):
                                dq.popleft()
                        for p, w in outs:
                            reserved[p] += w
                        dirty |= t_wake_fire[ti]
                        delay = (
                            float(delay_fn(consumed))
                            if delay_fn is not None
                            else t_delay_const[ti]
                        )
                        if delay < 0:
                            raise DefinitionError(
                                f"transition {t_names[ti]!r} computed a negative delay"
                            )
                        busy[ti] += 1
                        fire_count[ti] += 1
                        fired += 1
                        if fired > budget:
                            raise SimulationError(
                                f"net {net_name!r}: more than {budget} "
                                f"firings at t={now}; likely a zero-delay loop"
                            )
                        after = t_timeout_after[ti]
                        if after is not None and delay > after:
                            heappush(events, (now + after, seq, _FAIL, ti, first, now))
                        else:
                            heappush(
                                events, (now + delay, seq, _COMPLETE, ti, first, now)
                            )
                        seq += 1

        def record(slot: int, time: float) -> None:
            nonlocal last_completion
            comp_counts[slot] += 1
            if time > last_completion:
                last_completion = time
            if comp_times is not None:
                comp_times[slot].append(time)

        def deposit(p: int, token: Token, from_reservation: bool) -> None:
            nonlocal dirty
            slot = sink_slot[p]
            if slot >= 0:
                if from_reservation:
                    reserved[p] -= 1
                    dirty |= producers_mask[p]
                record(slot, now)
                return
            if from_reservation:
                if reserved[p] <= 0:
                    raise CapacityError(
                        f"place {place_names[p]!r}: deposit without prior reservation"
                    )
                reserved[p] -= 1
            else:
                cap = capacity[p]
                if cap is not None and cap - len(tokens[p]) - reserved[p] < 1:
                    raise CapacityError(
                        f"place {place_names[p]!r} is full (capacity {cap})"
                    )
            tokens[p].append(token)
            dirty |= consumers_mask[p]

        inf = float("inf")
        while True:
            t = events[0][0] if events else inf
            if inj_i < inj_n:
                t_inj = inj[inj_i][0]
                if t_inj < t:
                    t = t_inj
            elif not events:
                break
            now = t
            while inj_i < inj_n and inj[inj_i][0] == t:
                idx, tok = inj[inj_i][1], inj[inj_i][2]
                inj_i += 1
                tok.born = t
                slot = sink_slot[idx]
                if slot >= 0:
                    record(slot, t)
                else:
                    cap = capacity[idx]
                    if cap is not None and cap - len(tokens[idx]) - reserved[idx] < 1:
                        raise CapacityError(
                            f"place {place_names[idx]!r} is full (capacity {cap})"
                        )
                    tokens[idx].append(tok)
                    dirty |= consumers_mask[idx]
            while events and events[0][0] == t:
                _, _, kind, idx, tok, t0 = heappop(events)
                if kind == _COMPLETE:
                    p = t_out1[idx]
                    if p >= 0:
                        if tok.born is None:
                            tok.born = t0
                        reserved[p] -= 1
                        slot = sink_slot[p]
                        if slot >= 0:
                            record(slot, now)
                        else:
                            tokens[p].append(tok)
                        dirty |= wake_done[idx]
                        busy[idx] -= 1
                    elif (ow := t_outw[idx]) is not None:
                        p, w = ow
                        if tok.born is None:
                            tok.born = t0
                        reserved[p] -= w
                        slot = sink_slot[p]
                        if slot >= 0:
                            record(slot, now)
                        else:
                            tokens[p].append(tok)
                        payload, born, trace = tok.payload, tok.born, tok.trace
                        for _ in range(w - 1):
                            child = new_token(Token)
                            child.payload = payload
                            child.born = born
                            child.uid = next_uid()
                            child.trace = None if trace is None else list(trace)
                            if slot >= 0:
                                record(slot, now)
                            else:
                                tokens[p].append(child)
                        dirty |= wake_done[idx]
                        busy[idx] -= 1
                    else:
                        for p, w in t_out[idx]:
                            for _ in range(w):
                                child = tok.child()
                                if child.born is None:
                                    child.born = t0
                                deposit(p, child, True)
                        busy[idx] -= 1
                        dirty |= 1 << idx
                else:  # _FAIL
                    for p, w in t_out[idx]:
                        reserved[p] -= w
                        dirty |= producers_mask[p]
                    fault = tok.child() if tok is not None else Token()
                    deposit(t_timeout_place[idx], fault, False)
                    busy[idx] -= 1
                    dirty |= 1 << idx
            fire_all()

        residual = sum(len(dq) for dq in tokens)
        in_flight = any(busy)
        deadlocked = residual > 0 and not in_flight and not events and inj_i >= inj_n
        return BatchItemResult(
            makespan=last_completion,
            end_time=now,
            counts=dict(zip(self.sinks, comp_counts, strict=True)),
            first_injection=first_injection,
            deadlocked=deadlocked,
            residual_tokens=residual,
            completion_times=(
                dict(zip(self.sinks, comp_times, strict=True))
                if comp_times is not None
                else None
            ),
            fired=(
                dict(zip(t_names, fire_count, strict=True)) if collect else None
            ),
        )


# ----------------------------------------------------------------------
# Public facade
# ----------------------------------------------------------------------


def _normalize(injections: Sequence[Any]) -> list[tuple[str, Any, float]]:
    """Accept Injection-likes or ``(place, payload, at)`` tuples."""
    out = []
    for inj in injections:
        if isinstance(inj, tuple):
            place, payload, at = inj
        else:
            place, payload, at = inj.place, inj.payload, inj.at
        out.append((place, payload, at))
    return out


class BatchEvaluator:
    """Evaluate many workload items against one lowered net.

    Args:
        net: The net to evaluate (lowered once, at construction).
        sinks: Places whose deposits count as completions.
        engine: ``"auto"`` (codegen when the net is a supported chain,
            columnar otherwise), ``"codegen"`` (raises when the net is
            not a chain), or ``"columnar"``.  ``None`` defers to
            ``$REPRO_PETRI_BATCH_ENGINE``/auto.
        compiled: Share a pre-built :class:`CompiledNet`.

    Each item is a sequence of injections (``Injection`` objects or
    ``(place, payload, at)`` tuples).  Results are bit-identical to
    running :class:`CompiledSimulator` on each item in isolation.
    """

    def __init__(
        self,
        net: PetriNet,
        sinks: Sequence[str] = ("out",),
        *,
        engine: str | None = None,
        compiled: CompiledNet | None = None,
    ):
        if engine is None:
            engine = default_batch_engine()
        if engine not in BATCH_ENGINES:
            raise ValueError(
                f"unknown batch engine {engine!r}; expected one of "
                f"{', '.join(BATCH_ENGINES)}"
            )
        reasons = unsupported_features(net)
        if reasons:
            raise SimulationError(
                f"net {net.name!r} cannot be batch-evaluated: " + "; ".join(reasons)
            )
        if compiled is not None and compiled.net is not net:
            raise SimulationError("compiled form belongs to a different net object")
        self.net = net
        self.sinks = list(sinks)
        self.compiled = compiled if compiled is not None else CompiledNet(net)
        self._columnar = _ColumnarRunner(self.compiled, self.sinks)
        self._codegen: _CodegenRunner | None = None
        if engine == "codegen":
            reasons = chain_unsupported_reasons(net, self.sinks)
            if reasons:
                raise SimulationError(
                    f"engine='codegen' cannot run net {net.name!r}: "
                    + "; ".join(reasons)
                )
        if engine in ("auto", "codegen"):
            spec = chain_spec(net, self.sinks)
            if spec is not None:
                self._codegen = _CodegenRunner(spec)
        self.engine = "codegen" if self._codegen is not None else "columnar"
        #: Per-engine item counters, surfaced in reports and benches.
        self.items_codegen = 0
        self.items_columnar = 0
        self._place_index = self.compiled.place_index

    def evaluate(
        self, items: Sequence[Sequence[Any]], *, collect: bool = False
    ) -> list[BatchItemResult]:
        """Run every item; one :class:`BatchItemResult` per item, in
        input order.  ``collect=True`` additionally records completion
        times and fired counts (the differential harness's observables).
        """
        results = []
        codegen = self._codegen
        entry = codegen.spec.entry if codegen is not None else None
        place_index = self._place_index
        for injections in items:
            norm = _normalize(injections)
            for place, _, _ in norm:
                if place not in place_index:
                    raise SimulationError(f"unknown place {place!r}")
            if codegen is not None and all(
                p == entry and not isinstance(payload, Token)
                for p, payload, _ in norm
            ):
                pairs = sorted(
                    ((payload, at) for _, payload, at in norm),
                    key=lambda e: e[1],
                )
                try:
                    results.append(codegen.run_item(pairs, collect))
                    self.items_codegen += 1
                    continue
                except _ZeroDelayBailout:
                    pass  # re-run this item on the event loop
            results.append(
                self._columnar.run_item(
                    [(place_index[p], payload, at) for p, payload, at in norm],
                    collect,
                )
            )
            self.items_columnar += 1
        return results

    def evaluate_makespans(self, items: Sequence[Sequence[Any]]) -> list[float]:
        """Makespan per item — the latency-interface fast path."""
        return [r.makespan for r in self.evaluate(items)]
