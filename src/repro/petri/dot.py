"""Graphviz DOT export for performance-IR nets.

Petri-net interfaces are "not human-readable" per the paper; rendering
them is the next best thing for a developer who wants to eyeball the
pipeline topology a vendor shipped.
"""

from __future__ import annotations

from .net import PetriNet


def to_dot(net: PetriNet, *, rankdir: str = "LR") -> str:
    """Render the net as a DOT digraph (places=circles, transitions=boxes)."""
    lines = [
        f'digraph "{net.name}" {{',
        f"  rankdir={rankdir};",
        '  node [fontname="Helvetica"];',
    ]
    for name, place in net.places.items():
        cap = "" if place.capacity is None else f"\\ncap={place.capacity}"
        lines.append(f'  "p_{name}" [shape=circle, label="{name}{cap}"];')
    for t in net.ordered_transitions():
        extra = ""
        if t.servers is None:
            extra = "\\nservers=inf"
        elif t.servers != 1:
            extra = f"\\nservers={t.servers}"
        lines.append(
            f'  "t_{t.name}" [shape=box, style=filled, fillcolor=lightgray, '
            f'label="{t.name}{extra}"];'
        )
        for arc in t.inputs:
            w = "" if arc.weight == 1 else f' [label="{arc.weight}"]'
            lines.append(f'  "p_{arc.place}" -> "t_{t.name}"{w};')
        for arc in t.outputs:
            w = "" if arc.weight == 1 else f' [label="{arc.weight}"]'
            lines.append(f'  "t_{t.name}" -> "p_{arc.place}"{w};')
    lines.append("}")
    return "\n".join(lines)
