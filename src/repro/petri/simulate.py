"""Deterministic discrete-event execution of timed Petri nets.

Execution semantics (documented here because the ground-truth hardware
models in :mod:`repro.hw` and the interface nets must agree on them):

* Time is continuous (floats, usually interpreted as clock cycles).
* A transition is *enabled* at time ``t`` when (a) every input place
  holds at least ``weight`` tokens, (b) its guard accepts the tokens
  that would be consumed (FIFO order per place), (c) a server is free,
  and (d) every output place can reserve ``weight`` slots.
* Firing consumes the input tokens and reserves output slots at ``t``
  ("reserve-at-start" backpressure: a stage does not begin work it
  cannot drain, like a pipeline stage gated by downstream ready).
* The firing completes at ``t + delay(consumed)``; completion deposits
  the produced tokens and frees the server.
* When several transitions are enabled at the same instant they fire in
  ``(priority, name)`` order, and firing repeats until no transition is
  enabled, so zero-delay transitions cascade within one instant.

Determinism: given the same net, injection schedule, and token payloads,
two runs produce identical event sequences.  Nothing in the engine draws
randomness.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any, Literal

from .errors import DeadlineError, DeadlockError, SimulationError
from .net import PetriNet, Transition
from .token import Token


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


@dataclass
class Completion:
    """A token arriving at a sink place."""

    time: float
    token: Token

    @property
    def latency(self) -> float:
        """End-to-end latency: arrival time minus injection time."""
        return self.token.aged(self.time)


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    end_time: float
    completions: dict[str, list[Completion]]
    fired: dict[str, int]
    deadlocked: bool = False
    residual_tokens: int = 0
    #: True when the run stopped at its ``max_time`` watchdog with events
    #: still pending — completions/fired counts are partial progress.
    deadline_exceeded: bool = False
    #: Time of the earliest workload injection (``None`` when the run had
    #: no injections).  Throughput is measured from here, not from t=0,
    #: so workloads injected with ``start > 0`` are not understated.
    first_injection: float | None = None

    def sink(self, name: str | None = None) -> list[Completion]:
        """Completions for ``name``, or for the only sink when omitted."""
        if name is None:
            if len(self.completions) != 1:
                raise ValueError(
                    f"net has {len(self.completions)} sinks; name one of "
                    f"{sorted(self.completions)}"
                )
            return next(iter(self.completions.values()))
        return self.completions[name]

    def latencies(self, sink: str | None = None) -> list[float]:
        return [c.latency for c in self.sink(sink)]

    def makespan(self) -> float:
        """Time of the last completion across all sinks (0 if none)."""
        times = [c.time for comps in self.completions.values() for c in comps]
        return max(times, default=0.0)

    def throughput(self, sink: str | None = None) -> float:
        """Completions per unit time over the first-injection→end window."""
        comps = self.sink(sink)
        start = self.first_injection if self.first_injection is not None else 0.0
        span = self.end_time - start
        if not comps or span <= 0:
            return 0.0
        return len(comps) / span


class Simulator:
    """Runs a :class:`~repro.petri.net.PetriNet` over an injected workload.

    Args:
        net: The net to execute.  Its marking is reset on :meth:`run`.
        sinks: Place names treated as terminal; tokens deposited there
            are recorded as :class:`Completion` and removed, so sink
            capacity never throttles the net.
        trace: When true, every token records its ``(transition, time)``
            path — useful for debugging interface nets, costly for
            large workloads.
        tracer: Optional span sink (anything with
            ``add_span(name, start, end, *, cat, tid)`` — see
            :class:`repro.obs.Tracer`).  Each firing emits one span
            from fire time to completion, named after the transition
            and categorized ``petri.fire``/``petri.guarded``
            (``petri.timeout`` with a ``name!timeout`` suffix for fault
            arcs).  Pure observation: tracing cannot change results,
            and :mod:`repro.petri.differential` asserts both engines
            emit identical spans.
    """

    #: Safety valve against zero-delay livelock.
    MAX_FIRINGS_PER_INSTANT = 100_000

    def __init__(
        self,
        net: PetriNet,
        sinks: Sequence[str] = ("out",),
        *,
        trace: bool = False,
        tracer=None,
    ):
        for s in sinks:
            if s not in net.places:
                raise SimulationError(f"sink {s!r} is not a place of net {net.name!r}")
        self.net = net
        self.sinks = list(sinks)
        self.trace = trace
        self.tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._events: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._pending: list[tuple[float, str, Token]] = []

    # ------------------------------------------------------------------
    # Workload injection
    # ------------------------------------------------------------------
    def inject(self, place: str, payload: Any = None, at: float = 0.0) -> Token:
        """Schedule a token carrying ``payload`` to enter ``place`` at ``at``."""
        if place not in self.net.places:
            raise SimulationError(f"unknown place {place!r}")
        token = payload if isinstance(payload, Token) else Token(payload=payload)
        self._pending.append((at, place, token))
        return token

    def inject_stream(
        self, place: str, payloads: Iterable[Any], *, start: float = 0.0, gap: float = 0.0
    ) -> list[Token]:
        """Inject one token per payload, ``gap`` time units apart."""
        tokens = []
        t = start
        for payload in payloads:
            tokens.append(self.inject(place, payload, at=t))
            t += gap
        return tokens

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: float | None = None,
        max_time: float | None = None,
        on_deadlock: Literal["stop", "raise"] = "stop",
        on_deadline: Literal["stop", "raise"] = "stop",
    ) -> SimResult:
        """Execute until quiescence (or ``until``), returning the result.

        ``max_time`` is a watchdog budget: a run that would simulate past
        it stops at the deadline and reports partial progress
        (``deadline_exceeded=True``) instead of spinning — or raises
        :class:`~repro.petri.errors.DeadlineError` (carrying the partial
        result) when ``on_deadline="raise"``.  Unlike ``until``, which is
        a planned observation horizon, ``max_time`` flags the truncation.
        """
        net = self.net
        net.reset()
        self._events.clear()
        self._now = 0.0
        completions: dict[str, list[Completion]] = {s: [] for s in self.sinks}
        sinkset = set(self.sinks)

        # Dirty-set scheduling: only transitions whose neighborhood
        # changed are re-checked for enabledness.  consumers[p] are the
        # transitions reading place p (can be enabled by a deposit or a
        # head change); producers[p] are those writing p (can be enabled
        # when p's capacity frees up).
        self._consumers: dict[str, list[Transition]] = {p: [] for p in net.places}
        self._producers: dict[str, list[Transition]] = {p: [] for p in net.places}
        for t in net.ordered_transitions():
            t.sort_key = (t.priority, t.name)
            # Arc caches: resolve place objects once, not per check.
            t.in_arcs = [(arc.place, net.places[arc.place], arc.weight) for arc in t.inputs]
            t.out_arcs = [(arc.place, net.places[arc.place], arc.weight) for arc in t.outputs]
            for arc in t.inputs:
                self._consumers[arc.place].append(t)
            for arc in t.outputs:
                self._producers[arc.place].append(t)
        self._dirty: set[Transition] = set()

        first_injection = min((at for at, _, _ in self._pending), default=None)
        for at, place, token in sorted(
            self._pending, key=lambda item: (item[0], item[2].uid)
        ):
            self._schedule(at, self._make_inject(place, token, sinkset, completions))
        self._pending.clear()

        deadline_exceeded = False
        while self._events:
            # Pop every event scheduled for the next instant, apply them,
            # then fire enabled transitions to fixpoint at that instant.
            t = self._events[0].time
            if max_time is not None and t > max_time:
                self._now = max_time
                deadline_exceeded = True
                break
            if until is not None and t > until:
                self._now = until
                break
            self._now = t
            while self._events and self._events[0].time == t:
                heapq.heappop(self._events).action()
            self._fire_all(sinkset, completions)

        deadlocked = False
        residual = net.total_tokens()
        in_flight = any(t.busy for t in net.transitions.values())
        if residual > 0 and not in_flight and not self._events:
            deadlocked = True
            if on_deadlock == "raise":
                raise DeadlockError(
                    f"net {net.name!r} starved with {residual} resident tokens: "
                    f"marking={net.marking()}"
                )
        result = SimResult(
            end_time=self._now,
            completions=completions,
            fired={name: t.fire_count for name, t in net.transitions.items()},
            deadlocked=deadlocked,
            residual_tokens=residual,
            deadline_exceeded=deadline_exceeded,
            first_injection=first_injection,
        )
        if deadline_exceeded and on_deadline == "raise":
            done = sum(len(c) for c in completions.values())
            raise DeadlineError(
                f"net {net.name!r} exceeded max_time={max_time} with "
                f"{len(self._events)} events pending ({done} completions so far)",
                result=result,
            )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule(self, time: float, action: Callable[[], None]) -> None:
        if time < self._now:
            raise SimulationError(f"event scheduled in the past ({time} < {self._now})")
        heapq.heappush(self._events, _Event(time, next(self._seq), action))

    def _make_inject(
        self,
        place: str,
        token: Token,
        sinkset: set[str],
        completions: dict[str, list[Completion]],
    ) -> Callable[[], None]:
        def action() -> None:
            token.born = self._now
            if self.trace and token.trace is None:
                token.trace = []
            self._deposit(place, token, sinkset, completions, from_reservation=False)

        return action

    def _deposit(
        self,
        place: str,
        token: Token,
        sinkset: set[str],
        completions: dict[str, list[Completion]],
        *,
        from_reservation: bool,
    ) -> None:
        if place in sinkset:
            if from_reservation:
                self.net.places[place].reserved -= 1
                # A sink deposit releases reserved capacity: writers of
                # this place may become enabled again.
                self._dirty.update(self._producers[place])
            completions[place].append(Completion(time=self._now, token=token))
        else:
            self.net.places[place].put(token, from_reservation=from_reservation)
            self._dirty.update(self._consumers[place])

    def _enabled_consumption(
        self, t: Transition
    ) -> dict[str, list[Token]] | None:
        """Return the tokens ``t`` would consume now, or ``None`` if disabled."""
        if t.servers is not None and t.busy >= t.servers:
            return None
        for _, place, weight in t.in_arcs:
            if len(place.tokens) < weight:
                return None
        for _, place, weight in t.out_arcs:
            cap = place.capacity
            if cap is not None and cap - len(place.tokens) - place.reserved < weight:
                return None
        consumed = {
            name: (
                [place.tokens[0]] if weight == 1 else place.peek(weight)
            )
            for name, place, weight in t.in_arcs
        }
        if t.guard is not None and not t.guard(consumed):
            return None
        return consumed

    def _fire_all(
        self, sinkset: set[str], completions: dict[str, list[Completion]]
    ) -> None:
        budget = self.MAX_FIRINGS_PER_INSTANT
        fired = 0
        while self._dirty:
            batch = sorted(self._dirty, key=lambda t: t.sort_key)
            self._dirty.clear()
            for t in batch:
                while True:
                    consumed = self._enabled_consumption(t)
                    if consumed is None:
                        break
                    fired += 1
                    if fired > budget:
                        raise SimulationError(
                            f"net {self.net.name!r}: more than {budget} "
                            f"firings at t={self._now}; likely a zero-delay loop"
                        )
                    self._fire(t, sinkset, completions)

    def _fire(
        self,
        t: Transition,
        sinkset: set[str],
        completions: dict[str, list[Completion]],
    ) -> None:
        consumed = {
            name: place.take(weight) for name, place, weight in t.in_arcs
        }
        for _, place, weight in t.out_arcs:
            place.reserved += weight
        # Consuming freed input capacity (writers may proceed) and
        # changed the input heads (other readers' guards may now match).
        dirty = self._dirty
        for name, _, _ in t.in_arcs:
            dirty.update(self._producers[name])
            dirty.update(self._consumers[name])
        delay = t.compute_delay(consumed)
        t.busy += 1
        t.fire_count += 1
        fire_time = self._now

        if t.timeout is not None and delay > t.timeout[0]:
            # Fault arc: the firing exceeds its declared budget.  At the
            # deadline the work is abandoned — output reservations are
            # released and one fault token lands in the timeout place
            # (which may itself be a sink).  If the timeout place is
            # bounded and full this raises CapacityError; the linter
            # flags bounded timeout places for exactly that reason.
            after, fault_place = t.timeout
            t.busy_time += after

            def fail() -> None:
                if self.tracer is not None:
                    self.tracer.add_span(
                        f"{t.name}!timeout",
                        fire_time,
                        self._now,
                        cat="petri.timeout",
                        tid=self.net.name,
                    )
                for name, place, _weight in t.out_arcs:
                    place.reserved -= _weight
                    self._dirty.update(self._producers[name])
                first: Token | None = None
                for arc in t.inputs:
                    toks = consumed.get(arc.place)
                    if toks:
                        first = toks[0]
                        break
                fault_token = first.child() if first is not None else Token()
                if self.trace:
                    if fault_token.trace is None:
                        fault_token.trace = []
                    fault_token.trace.append((f"{t.name}!timeout", self._now))
                self._deposit(
                    fault_place, fault_token, sinkset, completions, from_reservation=False
                )
                t.busy -= 1
                self._dirty.add(t)

            self._schedule(fire_time + after, fail)
            return

        t.busy_time += delay

        def complete() -> None:
            if self.tracer is not None:
                self.tracer.add_span(
                    t.name,
                    fire_time,
                    self._now,
                    cat="petri.guarded" if t.guard is not None else "petri.fire",
                    tid=self.net.name,
                )
            produced = (
                t.produce(consumed) if t.produce is not None else t.default_production(consumed)
            )
            for arc in t.outputs:
                toks = list(produced.get(arc.place, ()))
                if len(toks) != arc.weight:
                    raise SimulationError(
                        f"transition {t.name!r} produced {len(toks)} tokens for "
                        f"{arc.place!r}, expected {arc.weight}"
                    )
                for tok in toks:
                    if tok.born is None:
                        tok.born = fire_time
                    if self.trace:
                        if tok.trace is None:
                            tok.trace = []
                        tok.trace.append((t.name, self._now))
                    self._deposit(
                        arc.place, tok, sinkset, completions, from_reservation=True
                    )
            extras = set(produced) - {a.place for a in t.outputs}
            if extras:
                raise SimulationError(
                    f"transition {t.name!r} produced tokens for non-output "
                    f"places {sorted(extras)}"
                )
            t.busy -= 1
            self._dirty.add(t)  # a server freed up

        self._schedule(fire_time + delay, complete)


def run_workload(
    net: PetriNet,
    payloads: Iterable[Any],
    *,
    entry: str = "in",
    sinks: Sequence[str] = ("out",),
    gap: float = 0.0,
    start: float = 0.0,
    until: float | None = None,
    max_time: float | None = None,
    on_deadline: Literal["stop", "raise"] = "stop",
) -> SimResult:
    """One-shot helper: inject ``payloads`` into ``entry`` and run.

    ``gap=0`` gives closed-batch semantics (everything available at
    ``start``), which measures saturated throughput; a positive gap
    models an open arrival process.
    """
    sim = Simulator(net, sinks=sinks)
    sim.inject_stream(entry, payloads, start=start, gap=gap)
    return sim.run(until=until, max_time=max_time, on_deadline=on_deadline)
