"""Timed, colored Petri nets: the performance IR for accelerators.

This package is the reusable engine behind the paper's third interface
representation.  A net built here (or parsed from ``.pnet`` text) is a
circuit that is *performance-equivalent* to an accelerator: simulating
it over a workload predicts the accelerator's latency and throughput
without computing any of its functional outputs.

Typical use::

    from repro.petri import PetriNet, Simulator

    net = PetriNet("adder")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("alu", ["in"], ["out"], delay=3)

    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", range(100))
    result = sim.run()
    result.latencies()    # -> per-item end-to-end cycles
"""

from .components import (
    add_bounded_stage,
    add_fcfs_port,
    add_mutex,
    mutex_injections,
)
from .analysis import (
    CycleList,
    StructureReport,
    analyze_structure,
    bottleneck_estimate,
    covers_all_positive,
    find_cycles,
    incidence_matrix,
    maximal_siphon,
    p_invariants,
    t_invariants,
)
from .batched import (
    BATCH_ENGINE_ENV_VAR,
    BATCH_ENGINES,
    BatchEvaluator,
    BatchItemResult,
    chain_spec,
    chain_unsupported_reasons,
    codegen_supported,
    default_batch_engine,
)
from .compiled import (
    ENGINES,
    CompiledNet,
    CompiledSimulator,
    default_engine,
    make_simulator,
    supports,
    unsupported_features,
)
from .dot import to_dot
from .dsl import parse, to_pnet
from .errors import (
    AnalysisError,
    CapacityError,
    DeadlineError,
    DeadlockError,
    DefinitionError,
    DslError,
    PetriError,
    SimulationError,
)
from .net import Arc, PetriNet, Place, Transition, chain
from .simulate import Completion, SimResult, Simulator, run_workload
from .token import Token

__all__ = [
    "BATCH_ENGINES",
    "BATCH_ENGINE_ENV_VAR",
    "ENGINES",
    "AnalysisError",
    "Arc",
    "BatchEvaluator",
    "BatchItemResult",
    "CapacityError",
    "Completion",
    "CompiledNet",
    "CompiledSimulator",
    "CycleList",
    "DeadlineError",
    "DeadlockError",
    "DefinitionError",
    "DslError",
    "PetriError",
    "PetriNet",
    "Place",
    "SimResult",
    "SimulationError",
    "Simulator",
    "StructureReport",
    "Token",
    "Transition",
    "add_bounded_stage",
    "add_fcfs_port",
    "add_mutex",
    "analyze_structure",
    "bottleneck_estimate",
    "chain",
    "chain_spec",
    "chain_unsupported_reasons",
    "codegen_supported",
    "covers_all_positive",
    "default_batch_engine",
    "default_engine",
    "find_cycles",
    "incidence_matrix",
    "make_simulator",
    "maximal_siphon",
    "mutex_injections",
    "p_invariants",
    "parse",
    "run_workload",
    "supports",
    "t_invariants",
    "to_dot",
    "to_pnet",
    "unsupported_features",
]
