"""Differential testing: reference ``Simulator`` vs ``CompiledSimulator``.

The compiled engine (:mod:`repro.petri.compiled`) promises *bit-identical*
``SimResult``s to the reference interpreter on every net it supports.  This
module is the executable form of that promise: it runs the same net and
workload through both engines and asserts that every observable — completion
times and payloads, fired counts, deadlock/deadline flags, residual markings,
per-transition statistics, and even the type and message of any raised
error — matches exactly.

Two case families are provided:

* :func:`accel_cases` — the real accelerator nets shipped in
  ``src/repro/accel/*/interfaces.py`` (JPEG decoder, VTA, bitcoin miner),
  driven by their own ``tokenize`` functions over reproducible workloads.
* :func:`random_cases` — seeded, randomly generated structural nets that
  exercise the engine features accelerator nets may not (weighted arcs,
  fan-out/merge, guard splits, timeouts, finite capacities, deadlocks).

Run as a script for the CI parity smoke job::

    PYTHONPATH=src python -m repro.petri.differential
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from .compiled import CompiledSimulator, unsupported_features
from .errors import PetriError
from .net import PetriNet
from .simulate import SimResult, Simulator

#: A loader primes a simulator with injections (same API on both engines).
Loader = Callable[[Any], None]

#: A builder returns a *fresh* (net, sinks, loader) triple on every call, so
#: each engine simulates its own net object and token uids never collide.
Builder = Callable[[], tuple[PetriNet, Sequence[str], Loader]]


@dataclass
class DiffCase:
    """One differential scenario: a net builder plus ``run()`` kwargs."""

    name: str
    build: Builder
    run_kwargs: dict[str, Any] = field(default_factory=dict)


class EngineMismatch(AssertionError):
    """The two engines disagreed on an observable."""


def summarize(result: SimResult, net: PetriNet) -> tuple:
    """Canonical, engine-independent digest of a run.

    Token uids are deliberately excluded: they depend on a process-global
    counter, so two runs of the *same* engine already differ in uids.
    Everything else — times, payloads, birth times, counts, flags, final
    marking, per-transition stats — must match bit-for-bit.
    """
    completions = {
        sink: [(c.time, c.token.payload, c.token.born) for c in items]
        for sink, items in result.completions.items()
    }
    stats = {
        t.name: (t.busy, t.fire_count, t.busy_time)
        for t in net.transitions.values()
    }
    return (
        result.end_time,
        completions,
        result.fired,
        result.deadlocked,
        result.residual_tokens,
        result.deadline_exceeded,
        result.first_injection,
        net.marking(),
        stats,
    )


def _run_engine(
    engine: str,
    build: Builder,
    run_kwargs: dict[str, Any],
    *,
    tracing: bool = False,
) -> tuple:
    """Run one engine over a fresh net; normalize errors into the digest.

    With ``tracing=True`` a :class:`~repro.obs.Tracer` rides along and
    its ordered span list ``(name, start, end, cat, tid)`` joins the
    digest — proving instrumentation neither perturbs results nor
    diverges between engines.
    """
    net, sinks, load = build()
    tracer = None
    if tracing:
        from repro.obs import Tracer

        tracer = Tracer()
    if engine == "reference":
        sim: Any = Simulator(net, sinks=list(sinks), tracer=tracer)
    else:
        sim = CompiledSimulator(net, sinks=list(sinks), tracer=tracer)
    load(sim)
    try:
        result = sim.run(**run_kwargs)
    except PetriError as exc:
        return ("error", type(exc).__name__, str(exc))
    digest = summarize(result, net)
    if tracer is not None:
        return ("ok", digest, tuple(tracer.spans()))
    return ("ok", digest)


def compare_engines(case: DiffCase, *, tracing: bool = False) -> tuple:
    """Run *case* through both engines; raise :class:`EngineMismatch` on any
    observable difference.  Returns the (shared) digest on success."""
    reasons = unsupported_features(case.build()[0])
    if reasons:
        raise EngineMismatch(
            f"{case.name}: net not supported by compiled engine ({'; '.join(reasons)})"
        )
    ref = _run_engine("reference", case.build, case.run_kwargs, tracing=tracing)
    com = _run_engine("compiled", case.build, case.run_kwargs, tracing=tracing)
    if ref != com:
        raise EngineMismatch(
            f"{case.name}: engines disagree\n  reference: {ref!r}\n  compiled:  {com!r}"
        )
    return ref


# ----------------------------------------------------------------------
# Accelerator nets
# ----------------------------------------------------------------------


def _interface_case(name: str, make_iface: Callable[[], Any], item: Any) -> DiffCase:
    """Differential case driving an accelerator's PetriNetInterface net
    through its own tokenizer, exactly as ``PetriNetInterface._run`` does."""

    def build() -> tuple[PetriNet, Sequence[str], Loader]:
        iface = make_iface()  # fresh net per engine
        injections = iface.tokenize(item)

        def load(sim: Any) -> None:
            for inj in injections:
                sim.inject(inj.place, inj.payload, at=inj.at)

        return iface.net, [iface.sink], load

    return DiffCase(name, build)


def accel_cases() -> list[DiffCase]:
    """One case per accelerator net in ``src/repro/accel/*/interfaces.py``."""
    from repro.accel.bitcoin import interfaces as btc
    from repro.accel.bitcoin.workload import random_jobs
    from repro.accel.jpeg import interfaces as jpeg
    from repro.accel.jpeg.workload import random_images
    from repro.accel.vta import interfaces as vta
    from repro.accel.vta.workload import random_programs

    cases = []
    for i, img in enumerate(random_images(seed=7, count=2, min_dim=32, max_dim=96)):
        cases.append(_interface_case(f"jpeg[{i}]", jpeg.petri_interface, img))
    for i, prog in enumerate(random_programs(seed=11, count=2, max_dim=8)):
        cases.append(_interface_case(f"vta[{i}]", vta.petri_interface, prog))
    job = random_jobs(seed=3, count=1)[0]
    for loop in (4, 16):
        cases.append(
            _interface_case(
                f"bitcoin[loop={loop}]",
                lambda loop=loop: btc.petri_interface(loop),
                job,
            )
        )
    return cases


# ----------------------------------------------------------------------
# Randomized structural nets
# ----------------------------------------------------------------------


def _parity_guard(place: str, want: int) -> Callable[[dict], bool]:
    return lambda consumed: consumed[place][0].payload % 2 == want


def _payload_delay(place: str, base: float, mod: int) -> Callable[[dict], float]:
    return lambda consumed: base + consumed[place][0].payload % mod


def random_net(seed: int) -> tuple[PetriNet, list[str], Loader]:
    """Generate one random feed-forward net with a mix of engine features.

    Each stage is drawn from four structural idioms (plain server, weighted
    fan-out/merge, parity guard split, timeout), with random delays (constant
    or payload-dependent), server counts, and place capacities.  Feed-forward
    structure rules out zero-delay loops; weighted arcs and guards make
    deadlock-by-starvation a legitimate (and tested) outcome.
    """
    rng = random.Random(seed)
    net = PetriNet(f"rand{seed}")
    net.add_place("in")
    net.add_place("out")
    sinks = ["out"]
    prev = "in"
    n_stages = rng.randint(1, 4)

    def delay(stage: int) -> float | Callable[[dict], float]:
        if rng.random() < 0.3:
            return _payload_delay(prev, rng.choice([0.5, 1.0, 2.0]), rng.randint(2, 5))
        return rng.choice([0.5, 1.0, 1.5, 3.0])

    for s in range(n_stages):
        nxt = "out" if s == n_stages - 1 else f"p{s}"
        if nxt != "out":
            capacity = rng.choice([None, None, 4, 8])
            net.add_place(nxt, capacity=capacity)
        servers = rng.choice([None, 1, 2, 3])
        kind = rng.choice(["plain", "weighted", "guard", "timeout"])
        if kind == "plain":
            net.add_transition(
                f"t{s}", [prev], [nxt], delay=delay(s), servers=servers
            )
        elif kind == "weighted":
            w = rng.choice([2, 3, 4])
            mid = f"m{s}"
            net.add_place(mid)
            net.add_transition(
                f"t{s}a", [prev], [(mid, w)], delay=delay(s), servers=servers
            )
            net.add_transition(f"t{s}b", [(mid, w)], [nxt], delay=rng.choice([1.0, 2.0]))
        elif kind == "guard":
            net.add_transition(
                f"t{s}lo", [prev], [nxt],
                delay=rng.choice([1.0, 2.0]),
                guard=_parity_guard(prev, 0),
                servers=servers,
            )
            net.add_transition(
                f"t{s}hi", [prev], [nxt],
                delay=rng.choice([1.5, 2.5]),
                guard=_parity_guard(prev, 1),
            )
        else:  # timeout
            faults = f"faults{s}"
            net.add_place(faults)
            sinks.append(faults)
            net.add_transition(
                f"t{s}", [prev], [nxt],
                delay=_payload_delay(prev, 1.0, 6),
                timeout=(rng.choice([3.0, 4.0]), faults),
                servers=servers,
            )
        prev = nxt

    n_items = rng.randint(20, 60)
    gap = rng.choice([0.0, 0.25, 1.0])
    start = rng.choice([0.0, 0.0, 5.0])

    def load(sim: Any) -> None:
        sim.inject_stream("in", range(n_items), gap=gap, start=start)

    return net, sinks, load


def random_cases(seed: int = 0, count: int = 25) -> list[DiffCase]:
    """*count* seeded random structural nets, reproducible across runs."""
    cases = []
    for k in range(count):
        case_seed = seed * 10_000 + k
        cases.append(
            DiffCase(
                f"rand[{case_seed}]",
                lambda s=case_seed: random_net(s),
            )
        )
    return cases


def edge_cases() -> list[DiffCase]:
    """Hand-picked scenarios where both engines must raise the *same* error
    (type and message), plus early-stop deadline/until handling."""

    def starved() -> tuple[PetriNet, list[str], Loader]:
        net = PetriNet("starved")
        net.add_place("in")
        net.add_place("need")
        net.add_place("out")
        net.add_transition("t", ["in", "need"], ["out"], delay=1)
        return net, ["out"], lambda sim: sim.inject_stream("in", range(5))

    def slow_chain() -> tuple[PetriNet, list[str], Loader]:
        net = PetriNet("slow")
        net.add_place("in")
        net.add_place("mid", capacity=2)
        net.add_place("out")
        net.add_transition("a", ["in"], ["mid"], delay=3)
        net.add_transition("b", ["mid"], ["out"], delay=5, servers=1)
        return net, ["out"], lambda sim: sim.inject_stream("in", range(50))

    def bad_delay() -> tuple[PetriNet, list[str], Loader]:
        net = PetriNet("bad")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=lambda c: -1.0)
        return net, ["out"], lambda sim: sim.inject("in", payload=0)

    return [
        DiffCase("deadlock-stop", starved),
        DiffCase("deadlock-raise", starved, {"on_deadlock": "raise"}),
        DiffCase("deadline-stop", slow_chain, {"max_time": 40.0}),
        DiffCase("deadline-raise", slow_chain, {"max_time": 40.0, "on_deadline": "raise"}),
        DiffCase("until", slow_chain, {"until": 25.0}),
        DiffCase("negative-delay", bad_delay),
    ]


# ----------------------------------------------------------------------
# Harness entry points
# ----------------------------------------------------------------------


def run_differential(
    cases: Sequence[DiffCase], *, tracing: bool = False
) -> dict[str, tuple]:
    """Run every case through both engines; return ``{name: digest}``.

    Raises :class:`EngineMismatch` on the first disagreement.  With
    ``tracing=True`` every case additionally runs with a tracer
    attached on both engines, the span lists must match, and the traced
    result digest must equal the untraced one (observation cannot
    perturb the simulation).
    """
    digests = {}
    for case in cases:
        plain = compare_engines(case)
        if tracing:
            traced = compare_engines(case, tracing=True)
            if traced[:2] != plain[:2]:
                raise EngineMismatch(
                    f"{case.name}: tracing perturbed the result\n"
                    f"  untraced: {plain!r}\n  traced:   {traced[:2]!r}"
                )
        digests[case.name] = plain
    return digests


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.petri.differential",
        description="Assert reference/compiled engine parity on every case family",
    )
    parser.add_argument(
        "--tracing",
        action="store_true",
        help="also run every case with a Tracer attached on both engines and "
        "assert identical span lists and unperturbed results",
    )
    args = parser.parse_args(argv)

    accel = accel_cases()
    cases = accel + edge_cases() + random_cases(seed=0, count=25)
    digests = run_differential(cases, tracing=args.tracing)
    ok_errors = sum(1 for d in digests.values() if d[0] == "error")
    suffix = "; tracing parity included" if args.tracing else ""
    print(
        f"engine parity OK: {len(digests)} cases "
        f"({len(accel)} accelerator, {len(cases) - len(accel)} structural; "
        f"{ok_errors} raised identical errors in both engines{suffix})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
