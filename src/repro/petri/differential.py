"""Differential testing: reference vs compiled vs batched engines.

The compiled engine (:mod:`repro.petri.compiled`) promises *bit-identical*
``SimResult``s to the reference interpreter on every net it supports.  This
module is the executable form of that promise: it runs the same net and
workload through both engines and asserts that every observable — completion
times and payloads, fired counts, deadlock/deadline flags, residual markings,
per-transition statistics, and even the type and message of any raised
error — matches exactly.

The batch engines (:mod:`repro.petri.batched`) make the same promise *per
item*: evaluating a matrix of workloads must give, for every item, exactly
what a tracing-disabled :class:`CompiledSimulator` gives when run on that
item in isolation.  :func:`compare_batch_engines` asserts it for both batch
engines (the chain-recurrence codegen where the net supports it, the
columnar event loop always).

Case families:

* :func:`accel_cases` — the real accelerator nets shipped in
  ``src/repro/accel/*/interfaces.py`` (JPEG decoder, VTA, bitcoin miner),
  driven by their own ``tokenize`` functions over reproducible workloads.
* :func:`random_cases` — seeded, randomly generated structural nets that
  exercise the engine features accelerator nets may not (weighted arcs,
  fan-out/merge, guard splits, timeouts, finite capacities, deadlocks).
* :func:`batch_cases` — batched-vs-compiled matrices over every
  accelerator net, seeded random chains (codegen coverage), the random
  structural nets above (columnar coverage), and hand-picked edge items
  (zero/negative callable delays, empty items, mid-chain injections).

Run as a script for the CI parity smoke job::

    PYTHONPATH=src python -m repro.petri.differential
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from .batched import BatchEvaluator, BatchItemResult, codegen_supported
from .compiled import CompiledSimulator, unsupported_features
from .errors import PetriError
from .net import PetriNet
from .simulate import SimResult, Simulator

#: A loader primes a simulator with injections (same API on both engines).
Loader = Callable[[Any], None]

#: A builder returns a *fresh* (net, sinks, loader) triple on every call, so
#: each engine simulates its own net object and token uids never collide.
Builder = Callable[[], tuple[PetriNet, Sequence[str], Loader]]


@dataclass
class DiffCase:
    """One differential scenario: a net builder plus ``run()`` kwargs."""

    name: str
    build: Builder
    run_kwargs: dict[str, Any] = field(default_factory=dict)


class EngineMismatch(AssertionError):
    """The two engines disagreed on an observable."""


def summarize(result: SimResult, net: PetriNet) -> tuple:
    """Canonical, engine-independent digest of a run.

    Token uids are deliberately excluded: they depend on a process-global
    counter, so two runs of the *same* engine already differ in uids.
    Everything else — times, payloads, birth times, counts, flags, final
    marking, per-transition stats — must match bit-for-bit.
    """
    completions = {
        sink: [(c.time, c.token.payload, c.token.born) for c in items]
        for sink, items in result.completions.items()
    }
    stats = {
        t.name: (t.busy, t.fire_count, t.busy_time)
        for t in net.transitions.values()
    }
    return (
        result.end_time,
        completions,
        result.fired,
        result.deadlocked,
        result.residual_tokens,
        result.deadline_exceeded,
        result.first_injection,
        net.marking(),
        stats,
    )


def _run_engine(
    engine: str,
    build: Builder,
    run_kwargs: dict[str, Any],
    *,
    tracing: bool = False,
) -> tuple:
    """Run one engine over a fresh net; normalize errors into the digest.

    With ``tracing=True`` a :class:`~repro.obs.Tracer` rides along and
    its ordered span list ``(name, start, end, cat, tid)`` joins the
    digest — proving instrumentation neither perturbs results nor
    diverges between engines.
    """
    net, sinks, load = build()
    tracer = None
    if tracing:
        from repro.obs import Tracer

        tracer = Tracer()
    if engine == "reference":
        sim: Any = Simulator(net, sinks=list(sinks), tracer=tracer)
    else:
        sim = CompiledSimulator(net, sinks=list(sinks), tracer=tracer)
    load(sim)
    try:
        result = sim.run(**run_kwargs)
    except PetriError as exc:
        return ("error", type(exc).__name__, str(exc))
    digest = summarize(result, net)
    if tracer is not None:
        return ("ok", digest, tuple(tracer.spans()))
    return ("ok", digest)


def compare_engines(case: DiffCase, *, tracing: bool = False) -> tuple:
    """Run *case* through both engines; raise :class:`EngineMismatch` on any
    observable difference.  Returns the (shared) digest on success."""
    reasons = unsupported_features(case.build()[0])
    if reasons:
        raise EngineMismatch(
            f"{case.name}: net not supported by compiled engine ({'; '.join(reasons)})"
        )
    ref = _run_engine("reference", case.build, case.run_kwargs, tracing=tracing)
    com = _run_engine("compiled", case.build, case.run_kwargs, tracing=tracing)
    if ref != com:
        raise EngineMismatch(
            f"{case.name}: engines disagree\n  reference: {ref!r}\n  compiled:  {com!r}"
        )
    return ref


# ----------------------------------------------------------------------
# Accelerator nets
# ----------------------------------------------------------------------


def _interface_case(name: str, make_iface: Callable[[], Any], item: Any) -> DiffCase:
    """Differential case driving an accelerator's PetriNetInterface net
    through its own tokenizer, exactly as ``PetriNetInterface._run`` does."""

    def build() -> tuple[PetriNet, Sequence[str], Loader]:
        iface = make_iface()  # fresh net per engine
        injections = iface.tokenize(item)

        def load(sim: Any) -> None:
            for inj in injections:
                sim.inject(inj.place, inj.payload, at=inj.at)

        return iface.net, [iface.sink], load

    return DiffCase(name, build)


def accel_cases() -> list[DiffCase]:
    """One case per accelerator net in ``src/repro/accel/*/interfaces.py``."""
    from repro.accel.bitcoin import interfaces as btc
    from repro.accel.bitcoin.workload import random_jobs
    from repro.accel.jpeg import interfaces as jpeg
    from repro.accel.jpeg.workload import random_images
    from repro.accel.vta import interfaces as vta
    from repro.accel.vta.workload import random_programs

    cases = []
    for i, img in enumerate(random_images(seed=7, count=2, min_dim=32, max_dim=96)):
        cases.append(_interface_case(f"jpeg[{i}]", jpeg.petri_interface, img))
    for i, prog in enumerate(random_programs(seed=11, count=2, max_dim=8)):
        cases.append(_interface_case(f"vta[{i}]", vta.petri_interface, prog))
    job = random_jobs(seed=3, count=1)[0]
    for loop in (4, 16):
        cases.append(
            _interface_case(
                f"bitcoin[loop={loop}]",
                lambda loop=loop: btc.petri_interface(loop),
                job,
            )
        )
    return cases


# ----------------------------------------------------------------------
# Randomized structural nets
# ----------------------------------------------------------------------


def _parity_guard(place: str, want: int) -> Callable[[dict], bool]:
    return lambda consumed: consumed[place][0].payload % 2 == want


def _payload_delay(place: str, base: float, mod: int) -> Callable[[dict], float]:
    return lambda consumed: base + consumed[place][0].payload % mod


def random_net(seed: int) -> tuple[PetriNet, list[str], Loader]:
    """Generate one random feed-forward net with a mix of engine features.

    Each stage is drawn from four structural idioms (plain server, weighted
    fan-out/merge, parity guard split, timeout), with random delays (constant
    or payload-dependent), server counts, and place capacities.  Feed-forward
    structure rules out zero-delay loops; weighted arcs and guards make
    deadlock-by-starvation a legitimate (and tested) outcome.
    """
    rng = random.Random(seed)
    net = PetriNet(f"rand{seed}")
    net.add_place("in")
    net.add_place("out")
    sinks = ["out"]
    prev = "in"
    n_stages = rng.randint(1, 4)

    def delay(stage: int) -> float | Callable[[dict], float]:
        if rng.random() < 0.3:
            return _payload_delay(prev, rng.choice([0.5, 1.0, 2.0]), rng.randint(2, 5))
        return rng.choice([0.5, 1.0, 1.5, 3.0])

    for s in range(n_stages):
        nxt = "out" if s == n_stages - 1 else f"p{s}"
        if nxt != "out":
            capacity = rng.choice([None, None, 4, 8])
            net.add_place(nxt, capacity=capacity)
        servers = rng.choice([None, 1, 2, 3])
        kind = rng.choice(["plain", "weighted", "guard", "timeout"])
        if kind == "plain":
            net.add_transition(
                f"t{s}", [prev], [nxt], delay=delay(s), servers=servers
            )
        elif kind == "weighted":
            w = rng.choice([2, 3, 4])
            mid = f"m{s}"
            net.add_place(mid)
            net.add_transition(
                f"t{s}a", [prev], [(mid, w)], delay=delay(s), servers=servers
            )
            net.add_transition(f"t{s}b", [(mid, w)], [nxt], delay=rng.choice([1.0, 2.0]))
        elif kind == "guard":
            net.add_transition(
                f"t{s}lo", [prev], [nxt],
                delay=rng.choice([1.0, 2.0]),
                guard=_parity_guard(prev, 0),
                servers=servers,
            )
            net.add_transition(
                f"t{s}hi", [prev], [nxt],
                delay=rng.choice([1.5, 2.5]),
                guard=_parity_guard(prev, 1),
            )
        else:  # timeout
            faults = f"faults{s}"
            net.add_place(faults)
            sinks.append(faults)
            net.add_transition(
                f"t{s}", [prev], [nxt],
                delay=_payload_delay(prev, 1.0, 6),
                timeout=(rng.choice([3.0, 4.0]), faults),
                servers=servers,
            )
        prev = nxt

    n_items = rng.randint(20, 60)
    gap = rng.choice([0.0, 0.25, 1.0])
    start = rng.choice([0.0, 0.0, 5.0])

    def load(sim: Any) -> None:
        sim.inject_stream("in", range(n_items), gap=gap, start=start)

    return net, sinks, load


def random_cases(seed: int = 0, count: int = 25) -> list[DiffCase]:
    """*count* seeded random structural nets, reproducible across runs."""
    cases = []
    for k in range(count):
        case_seed = seed * 10_000 + k
        cases.append(
            DiffCase(
                f"rand[{case_seed}]",
                lambda s=case_seed: random_net(s),
            )
        )
    return cases


def edge_cases() -> list[DiffCase]:
    """Hand-picked scenarios where both engines must raise the *same* error
    (type and message), plus early-stop deadline/until handling."""

    def starved() -> tuple[PetriNet, list[str], Loader]:
        net = PetriNet("starved")
        net.add_place("in")
        net.add_place("need")
        net.add_place("out")
        net.add_transition("t", ["in", "need"], ["out"], delay=1)
        return net, ["out"], lambda sim: sim.inject_stream("in", range(5))

    def slow_chain() -> tuple[PetriNet, list[str], Loader]:
        net = PetriNet("slow")
        net.add_place("in")
        net.add_place("mid", capacity=2)
        net.add_place("out")
        net.add_transition("a", ["in"], ["mid"], delay=3)
        net.add_transition("b", ["mid"], ["out"], delay=5, servers=1)
        return net, ["out"], lambda sim: sim.inject_stream("in", range(50))

    def bad_delay() -> tuple[PetriNet, list[str], Loader]:
        net = PetriNet("bad")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=lambda c: -1.0)
        return net, ["out"], lambda sim: sim.inject("in", payload=0)

    return [
        DiffCase("deadlock-stop", starved),
        DiffCase("deadlock-raise", starved, {"on_deadlock": "raise"}),
        DiffCase("deadline-stop", slow_chain, {"max_time": 40.0}),
        DiffCase("deadline-raise", slow_chain, {"max_time": 40.0, "on_deadline": "raise"}),
        DiffCase("until", slow_chain, {"until": 25.0}),
        DiffCase("negative-delay", bad_delay),
    ]


# ----------------------------------------------------------------------
# Batched-engine parity
# ----------------------------------------------------------------------

#: One batch item: injections as ``(place, payload, at)`` triples.
BatchItem = list[tuple[str, Any, float]]

#: A batch builder returns a fresh ``(net, sinks)`` pair on every call.
BatchBuilder = Callable[[], tuple[PetriNet, Sequence[str]]]


@dataclass
class BatchDiffCase:
    """One batched-vs-compiled scenario: a net builder plus an item matrix."""

    name: str
    build: BatchBuilder
    items: list[BatchItem]


def batch_summarize(result: BatchItemResult) -> tuple:
    """Canonical digest of one batch item — the batched counterpart of
    :func:`summarize`, trimmed to what a :class:`BatchItemResult`
    carries (the batch engines never allocate ``Completion`` objects)."""
    return (
        result.makespan,
        result.end_time,
        result.counts,
        result.first_injection,
        result.deadlocked,
        result.residual_tokens,
        result.completion_times,
        result.fired,
    )


def _compiled_item_digest(build: BatchBuilder, item: BatchItem) -> tuple:
    """Tracing-disabled :class:`CompiledSimulator` baseline for one item
    run in isolation, in :func:`batch_summarize` form (or a normalized
    error triple — error parity is part of the batched contract)."""
    net, sinks = build()
    sim = CompiledSimulator(net, sinks=list(sinks))
    try:
        for place, payload, at in item:
            sim.inject(place, payload, at=at)
        result = sim.run()
    except PetriError as exc:
        return ("error", type(exc).__name__, str(exc))
    times = {
        sink: [c.time for c in result.completions.get(sink, [])] for sink in sinks
    }
    flat = [t for ts in times.values() for t in ts]
    return (
        "ok",
        (
            max(flat) if flat else 0.0,
            result.end_time,
            {sink: len(ts) for sink, ts in times.items()},
            result.first_injection,
            result.deadlocked,
            result.residual_tokens,
            times,
            result.fired,
        ),
    )


def compare_batch_engines(case: BatchDiffCase) -> dict[str, list[tuple]]:
    """Assert every batch engine reproduces the compiled baseline on
    *case*, item for item.

    The columnar engine runs always; the codegen engine additionally
    runs when the net is a supported chain.  When the baseline errors on
    item *k*, the batch engine must evaluate items ``0..k-1`` cleanly
    and then raise the identical error (type and message) on a matrix
    that includes item *k*.  Returns ``{engine: per-item digests}``.
    """
    baseline = [_compiled_item_digest(case.build, item) for item in case.items]
    first_error = next((i for i, d in enumerate(baseline) if d[0] == "error"), None)
    ok_until = first_error if first_error is not None else len(case.items)
    net, sinks = case.build()
    engines = ["columnar"]
    if codegen_supported(net, list(sinks)):
        engines.append("codegen")
    out: dict[str, list[tuple]] = {}
    for engine in engines:
        net, sinks = case.build()
        evaluator = BatchEvaluator(net, list(sinks), engine=engine)
        results = evaluator.evaluate(case.items[:ok_until], collect=True)
        digests = [("ok", batch_summarize(r)) for r in results]
        for i, (want, got) in enumerate(zip(baseline[:ok_until], digests)):
            if want != got:
                raise EngineMismatch(
                    f"{case.name}[item {i}] ({engine}): batch engine disagrees "
                    f"with compiled baseline\n"
                    f"  compiled: {want!r}\n  batched:  {got!r}"
                )
        if first_error is not None:
            net, sinks = case.build()
            evaluator = BatchEvaluator(net, list(sinks), engine=engine)
            try:
                evaluator.evaluate(case.items[: first_error + 1], collect=True)
            except PetriError as exc:
                got_err = ("error", type(exc).__name__, str(exc))
            else:
                got_err = ("no-error",)
            if got_err != baseline[first_error]:
                raise EngineMismatch(
                    f"{case.name}[item {first_error}] ({engine}): error parity "
                    f"failed\n"
                    f"  compiled: {baseline[first_error]!r}\n"
                    f"  batched:  {got_err!r}"
                )
        out[engine] = digests
    return out


def _interface_batch_case(
    name: str, make_iface: Callable[[], Any], workload: Sequence[Any]
) -> BatchDiffCase:
    """Batch case driving an accelerator net through its own tokenizer,
    one item per workload element — the matrix ``evaluate_batch`` sees."""
    iface = make_iface()
    items = [
        [(inj.place, inj.payload, inj.at) for inj in iface.tokenize(w)]
        for w in workload
    ]

    def build() -> tuple[PetriNet, Sequence[str]]:
        fresh = make_iface()
        return fresh.net, [fresh.sink]

    return BatchDiffCase(name, build, items)


def accel_batch_cases() -> list[BatchDiffCase]:
    """A batched workload matrix per accelerator Petri net — every net
    shipped in ``src/repro/accel/*/interfaces.py``."""
    from repro.accel.bitcoin import interfaces as btc
    from repro.accel.bitcoin.workload import random_jobs
    from repro.accel.jpeg import interfaces as jpeg
    from repro.accel.jpeg.workload import random_images
    from repro.accel.optimusprime import interfaces as optimus
    from repro.accel.protoacc import formats
    from repro.accel.protoacc import interfaces as protoacc
    from repro.accel.vta import interfaces as vta
    from repro.accel.vta.workload import random_programs

    messages = list(formats.instances(seed=5).values())[:6]
    return [
        _interface_batch_case(
            "jpeg",
            jpeg.petri_interface,
            random_images(seed=17, count=6, min_dim=16, max_dim=64),
        ),
        _interface_batch_case(
            "vta", vta.petri_interface, random_programs(seed=23, count=4, max_dim=8)
        ),
        _interface_batch_case(
            "bitcoin[loop=8]",
            lambda: btc.petri_interface(8),
            random_jobs(seed=29, count=3),
        ),
        _interface_batch_case("protoacc", protoacc.petri_interface, messages),
        _interface_batch_case("optimusprime", optimus.petri_interface, messages),
    ]


def random_chain_case(seed: int) -> BatchDiffCase:
    """A seeded random codegen-eligible chain plus a random item matrix.

    Chains are the codegen engine's entire supported surface, so this
    family varies exactly what matters there: depth, constant vs
    payload-dependent delays, finite output capacities (the ring
    recurrence), arrival gaps, and same-instant ties.
    """
    rng = random.Random(1_000_003 * seed + 7)
    n_stages = rng.randint(1, 5)
    caps = [rng.choice([None, None, 1, 2, 4]) for _ in range(n_stages)]
    kinds = [rng.choice(["const", "payload"]) for _ in range(n_stages)]
    consts = [rng.choice([0.25, 0.5, 1.0, 2.5]) for _ in range(n_stages)]
    mods = [rng.randint(2, 5) for _ in range(n_stages)]

    def build() -> tuple[PetriNet, Sequence[str]]:
        net = PetriNet(f"chain{seed}")
        net.add_place("in")
        prev = "in"
        for s in range(n_stages):
            nxt = "out" if s == n_stages - 1 else f"p{s}"
            net.add_place(nxt, capacity=None if nxt == "out" else caps[s])
            delay = (
                consts[s]
                if kinds[s] == "const"
                else _payload_delay(prev, consts[s], mods[s])
            )
            net.add_transition(f"t{s}", [prev], [nxt], delay=delay, servers=1)
            prev = nxt
        return net, ["out"]

    items = []
    for _ in range(rng.randint(2, 5)):
        n = rng.randint(3, 25)
        gap = rng.choice([0.0, 0.5, 1.0])
        start = rng.choice([0.0, 2.0])
        items.append([("in", k, start + k * gap) for k in range(n)])
    return BatchDiffCase(f"chain[{seed}]", build, items)


def random_structural_batch_case(seed: int) -> BatchDiffCase:
    """The :func:`random_net` structural family, batched.

    Guards, weighted arcs, timeouts, multi-server stages and deadlocks
    all route to the columnar engine (codegen rejects them), so this is
    the columnar engine's parity coverage."""

    def build() -> tuple[PetriNet, Sequence[str]]:
        net, sinks, _ = random_net(seed)
        return net, sinks

    rng = random.Random(seed + 777)
    items = []
    for _ in range(rng.randint(2, 4)):
        n = rng.randint(5, 30)
        gap = rng.choice([0.0, 0.25, 1.0])
        start = rng.choice([0.0, 5.0])
        items.append([("in", k, start + k * gap) for k in range(n)])
    return BatchDiffCase(f"rand-batch[{seed}]", build, items)


def edge_batch_cases() -> list[BatchDiffCase]:
    """Hand-picked batch scenarios: codegen bailouts, per-item error
    parity, empty items, and mid-chain injections."""

    def chain2() -> tuple[PetriNet, Sequence[str]]:
        net = PetriNet("edge-chain")
        net.add_place("in")
        net.add_place("mid", capacity=2)
        net.add_place("out")
        net.add_transition("a", ["in"], ["mid"], delay=1.5, servers=1)
        net.add_transition(
            "b", ["mid"], ["out"], delay=_payload_delay("mid", 0.5, 3), servers=1
        )
        return net, ["out"]

    def zero_delay() -> tuple[PetriNet, Sequence[str]]:
        net = PetriNet("edge-zero")
        net.add_place("in")
        net.add_place("out")
        net.add_transition(
            "t",
            ["in"],
            ["out"],
            delay=lambda c: float(c["in"][0].payload % 2),
            servers=1,
        )
        return net, ["out"]

    def negative_delay() -> tuple[PetriNet, Sequence[str]]:
        net = PetriNet("edge-negative")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=lambda c: -1.0, servers=1)
        return net, ["out"]

    return [
        # Mixed matrix: plain items, an empty item, same-instant ties.
        BatchDiffCase(
            "edge[mixed]",
            chain2,
            [
                [("in", k, 0.5 * k) for k in range(10)],
                [],
                [("in", k, 0.0) for k in range(6)],
            ],
        ),
        # Mid-chain injection: codegen must hand that item to columnar.
        BatchDiffCase(
            "edge[mid-place]",
            chain2,
            [
                [("in", k, float(k)) for k in range(5)],
                [("in", 0, 0.0), ("mid", 1, 0.0), ("in", 2, 1.0)],
            ],
        ),
        # Even payloads make the callable delay return 0.0: codegen bails
        # out on those items and the columnar rerun must still match.
        BatchDiffCase(
            "edge[zero-delay-bailout]",
            zero_delay,
            [
                [("in", 1, 0.0), ("in", 3, 1.0)],
                [("in", 2, 0.0), ("in", 1, 0.5)],
            ],
        ),
        # Error parity: identical DefinitionError type and message.
        BatchDiffCase(
            "edge[negative-delay]",
            negative_delay,
            [[("in", 1, 0.0)], [("in", 0, 1.0)]],
        ),
        # Error parity: injections cannot be scheduled in the past.
        BatchDiffCase(
            "edge[negative-at]",
            chain2,
            [[("in", 0, 1.0)], [("in", 1, -2.0)]],
        ),
    ]


def batch_cases() -> list[BatchDiffCase]:
    """Every batched parity case: accelerator matrices, random chains
    (codegen), random structural nets (columnar), and edge scenarios."""
    cases = accel_batch_cases() + edge_batch_cases()
    cases += [random_chain_case(k) for k in range(12)]
    cases += [random_structural_batch_case(500 + k) for k in range(8)]
    return cases


def run_batch_differential(
    cases: Sequence[BatchDiffCase],
) -> dict[str, dict[str, list[tuple]]]:
    """Run every batch case through every applicable batch engine;
    return ``{name: {engine: digests}}``.  Raises
    :class:`EngineMismatch` on the first per-item disagreement."""
    return {case.name: compare_batch_engines(case) for case in cases}


# ----------------------------------------------------------------------
# Harness entry points
# ----------------------------------------------------------------------


def run_differential(
    cases: Sequence[DiffCase], *, tracing: bool = False
) -> dict[str, tuple]:
    """Run every case through both engines; return ``{name: digest}``.

    Raises :class:`EngineMismatch` on the first disagreement.  With
    ``tracing=True`` every case additionally runs with a tracer
    attached on both engines, the span lists must match, and the traced
    result digest must equal the untraced one (observation cannot
    perturb the simulation).
    """
    digests = {}
    for case in cases:
        plain = compare_engines(case)
        if tracing:
            traced = compare_engines(case, tracing=True)
            if traced[:2] != plain[:2]:
                raise EngineMismatch(
                    f"{case.name}: tracing perturbed the result\n"
                    f"  untraced: {plain!r}\n  traced:   {traced[:2]!r}"
                )
        digests[case.name] = plain
    return digests


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.petri.differential",
        description="Assert reference/compiled engine parity on every case family",
    )
    parser.add_argument(
        "--tracing",
        action="store_true",
        help="also run every case with a Tracer attached on both engines and "
        "assert identical span lists and unperturbed results",
    )
    args = parser.parse_args(argv)

    accel = accel_cases()
    cases = accel + edge_cases() + random_cases(seed=0, count=25)
    digests = run_differential(cases, tracing=args.tracing)
    ok_errors = sum(1 for d in digests.values() if d[0] == "error")
    suffix = "; tracing parity included" if args.tracing else ""
    print(
        f"engine parity OK: {len(digests)} cases "
        f"({len(accel)} accelerator, {len(cases) - len(accel)} structural; "
        f"{ok_errors} raised identical errors in both engines{suffix})"
    )

    bcases = batch_cases()
    bresults = run_batch_differential(bcases)
    n_items = sum(len(case.items) for case in bcases)
    n_codegen = sum(1 for engines in bresults.values() if "codegen" in engines)
    print(
        f"batched parity OK: {len(bcases)} matrices / {n_items} items vs the "
        f"tracing-disabled compiled baseline "
        f"({n_codegen} matrices also ran the codegen engine)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
