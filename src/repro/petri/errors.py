"""Exceptions raised by the Petri-net performance IR engine."""


class PetriError(Exception):
    """Base class for all Petri-net engine errors."""


class DefinitionError(PetriError):
    """The net is structurally ill-formed (duplicate names, bad arcs, ...)."""


class SimulationError(PetriError):
    """The simulation reached an invalid state (e.g. negative delay)."""


class DeadlockError(SimulationError):
    """No transition is enabled but tokens remain and work was expected.

    Raised only when the caller asked :class:`repro.petri.simulate.Simulator`
    to treat starvation as an error (``on_deadlock="raise"``).
    """


class DeadlineError(SimulationError):
    """The run exceeded its ``max_time`` watchdog budget.

    Raised only when the caller asked :class:`repro.petri.simulate.Simulator`
    to treat the deadline as an error (``on_deadline="raise"``).  The
    partial :class:`~repro.petri.simulate.SimResult` accumulated up to
    the deadline is attached as :attr:`result`.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class AnalysisError(PetriError):
    """A static-analysis pass could not produce a trustworthy result
    (e.g. a bounded cycle search was truncated with ``on_truncate="raise"``)."""


class CapacityError(PetriError):
    """A token was forced into a place beyond its declared capacity."""


class DslError(PetriError):
    """A ``.pnet`` DSL document could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
