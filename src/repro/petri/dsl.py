"""A small textual DSL (``.pnet``) for shipping performance-IR nets.

The paper envisions vendors *shipping* Petri-net interfaces with their
accelerators.  That requires a concrete exchange format; we define a
line-oriented one that is diff-friendly and keeps the Table 1
"complexity" metric honest (interface size is measured on this text).

Example::

    net jpeg_decoder

    place in
    place q_idct capacity 4
    place out

    transition huffman
      consume in
      produce q_idct
      delay expr: tok["coeffs"] * 1.5 + 6
      servers 1

    transition idct
      consume q_idct
      produce out
      delay fn: idct_cost

Delay/guard forms:

* ``delay 12.5`` — constant cycles.
* ``delay expr: <expression>`` — evaluated with ``tok`` bound to the
  payload of the first consumed token, ``toks`` to the full consumption
  mapping, and a small math whitelist (``ceil``, ``floor``, ``min``,
  ``max``, ``abs``, ``len``).  Expressions run under a restricted
  ``eval`` with no builtins; a ``.pnet`` file is trusted the way a
  header file is.
* ``delay fn: name`` — looks up ``name`` in the ``env`` mapping passed
  to :func:`parse`; the function receives the consumption mapping.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from .errors import DefinitionError, DslError
from .net import Arc, PetriNet
from .token import Token

_SAFE_GLOBALS: dict[str, Any] = {
    "__builtins__": {},
    "ceil": math.ceil,
    "floor": math.floor,
    "sqrt": math.sqrt,
    "log2": math.log2,
    "min": min,
    "max": max,
    "abs": abs,
    "len": len,
}


#: Names an ``expr:`` clause may reference (besides ``tok``/``toks``).
EXPR_NAMES = frozenset(n for n in _SAFE_GLOBALS if n != "__builtins__")


def _compile_expr(src: str, line_no: int, kind: str) -> Callable[[Mapping[str, Sequence[Token]]], Any]:
    try:
        code = compile(src, f"<pnet:{kind}>", "eval")
    except SyntaxError as exc:
        raise DslError(f"bad {kind} expression {src!r}: {exc.msg}", line_no) from exc

    def evaluate(consumed: Mapping[str, Sequence[Token]]) -> Any:
        first = None
        for toks in consumed.values():
            if toks:
                first = toks[0].payload
                break
        scope = dict(_SAFE_GLOBALS)
        scope["tok"] = first
        scope["toks"] = consumed
        return eval(code, scope)  # noqa: S307 - restricted scope, trusted input

    evaluate.src = src  # type: ignore[attr-defined]
    evaluate.line = line_no  # type: ignore[attr-defined]
    return evaluate


def _parse_arcs(fields: list[str], line_no: int) -> list[Arc]:
    arcs = []
    for f in fields:
        if ":" in f:
            place, _, w = f.partition(":")
            try:
                arcs.append(Arc(place, int(w)))
            except ValueError as exc:
                raise DslError(f"bad arc weight in {f!r}", line_no) from exc
        else:
            arcs.append(Arc(f))
    if not arcs:
        raise DslError("expected at least one place name", line_no)
    return arcs


def parse(text: str, env: Mapping[str, Callable] | None = None) -> PetriNet:
    """Parse a ``.pnet`` document into a :class:`PetriNet`.

    Args:
        text: The document.
        env: Named delay/guard functions referenced by ``fn:`` clauses.
    """
    env = env or {}
    net: PetriNet | None = None
    pending: dict[str, Any] | None = None
    injects: list[tuple[str, frozenset[str] | None, int, int]] = []

    def flush(line_no: int) -> None:
        nonlocal pending
        if pending is None:
            return
        if net is None:
            raise DslError("transition before net declaration", line_no)
        if "consume" not in pending:
            raise DslError(f"transition {pending['name']!r} has no consume clause", line_no)
        try:
            t = net.add_transition(
                pending["name"],
                pending["consume"],
                pending.get("produce", []),
                delay=pending.get("delay", 0.0),
                guard=pending.get("guard"),
                servers=pending.get("servers", 1),
                priority=pending.get("priority", 0),
                timeout=pending.get("timeout"),
            )
        except DefinitionError as exc:
            t_line = pending.get("transition_span", (line_no, 1))[0]
            raise DslError(str(exc), t_line) from exc
        t.delay_src = pending.get("delay_src")  # type: ignore[attr-defined]
        t.guard_src = pending.get("guard_src")  # type: ignore[attr-defined]
        name = pending["name"]
        for kind in ("transition", "delay", "guard", "timeout"):
            span = pending.get(f"{kind}_span")
            if span is not None:
                net.source_map[(kind, name)] = span
        pending = None

    def col_of(raw: str, needle: str) -> int:
        pos = raw.find(needle)
        return pos + 1 if pos >= 0 else 1

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0]

        if keyword == "net":
            if net is not None:
                raise DslError("multiple net declarations", line_no)
            if len(fields) != 2:
                raise DslError("usage: net NAME", line_no)
            net = PetriNet(fields[1])
        elif keyword == "place":
            flush(line_no)
            if net is None:
                raise DslError("place before net declaration", line_no)
            if len(fields) == 2:
                net.add_place(fields[1])
            elif len(fields) == 4 and fields[2] == "capacity":
                try:
                    net.add_place(fields[1], capacity=int(fields[3]))
                except ValueError as exc:
                    raise DslError(f"bad capacity {fields[3]!r}", line_no) from exc
            else:
                raise DslError("usage: place NAME [capacity N]", line_no)
            net.source_map[("place", fields[1])] = (line_no, col_of(raw, fields[1]))
        elif keyword == "inject":
            flush(line_no)
            if net is None:
                raise DslError("inject before net declaration", line_no)
            if len(fields) == 2:
                injects.append((fields[1], None, line_no, col_of(raw, fields[1])))
            elif len(fields) >= 4 and fields[2] == "fields":
                injects.append(
                    (fields[1], frozenset(fields[3:]), line_no, col_of(raw, fields[1]))
                )
            else:
                raise DslError("usage: inject PLACE [fields NAME...]", line_no)
        elif keyword == "transition":
            flush(line_no)
            if len(fields) != 2:
                raise DslError("usage: transition NAME", line_no)
            pending = {
                "name": fields[1],
                "transition_span": (line_no, col_of(raw, fields[1])),
            }
        elif pending is not None:
            _parse_clause(pending, keyword, line, fields, line_no, env, raw)
        else:
            raise DslError(f"unexpected keyword {keyword!r}", line_no)

    flush(len(text.splitlines()))
    if net is None:
        raise DslError("document contains no net declaration")
    for place, decl_fields, line_no, col in injects:
        if place not in net.places:
            raise DslError(f"inject references unknown place {place!r}", line_no)
        net.declare_injection(place, decl_fields)
        net.source_map[("inject", place)] = (line_no, col)
    return net


def _parse_clause(
    pending: dict[str, Any],
    keyword: str,
    line: str,
    fields: list[str],
    line_no: int,
    env: Mapping[str, Callable],
    raw: str = "",
) -> None:
    def span_of(needle: str) -> tuple[int, int]:
        pos = raw.find(needle) if needle else -1
        return (line_no, pos + 1 if pos >= 0 else 1)

    if keyword == "consume":
        pending["consume"] = _parse_arcs(fields[1:], line_no)
    elif keyword == "produce":
        pending["produce"] = _parse_arcs(fields[1:], line_no)
    elif keyword == "delay":
        rest = line[len("delay"):].strip()
        if rest.startswith("expr:"):
            src = rest[len("expr:"):].strip()
            pending["delay"] = _compile_expr(src, line_no, "delay")
            pending["delay_src"] = f"expr: {src}"
            pending["delay_span"] = span_of(src)
        elif rest.startswith("fn:"):
            name = rest[len("fn:"):].strip()
            if name not in env:
                raise DslError(f"unknown delay function {name!r}", line_no)
            pending["delay"] = env[name]
            pending["delay_src"] = f"fn: {name}"
            pending["delay_span"] = span_of(name)
        else:
            try:
                pending["delay"] = float(rest)
            except ValueError as exc:
                raise DslError(f"bad delay {rest!r}", line_no) from exc
            pending["delay_src"] = rest
            pending["delay_span"] = span_of(rest)
    elif keyword == "guard":
        rest = line[len("guard"):].strip()
        if rest.startswith("expr:"):
            src = rest[len("expr:"):].strip()
            expr = _compile_expr(src, line_no, "guard")
            pending["guard"] = lambda consumed: bool(expr(consumed))
            pending["guard_src"] = f"expr: {src}"
            pending["guard_span"] = span_of(src)
        elif rest.startswith("fn:"):
            name = rest[len("fn:"):].strip()
            if name not in env:
                raise DslError(f"unknown guard function {name!r}", line_no)
            pending["guard"] = env[name]
            pending["guard_src"] = f"fn: {name}"
            pending["guard_span"] = span_of(name)
        else:
            raise DslError("guard requires expr: or fn:", line_no)
    elif keyword == "timeout":
        if len(fields) != 3:
            raise DslError("usage: timeout AFTER PLACE", line_no)
        try:
            after = float(fields[1])
        except ValueError as exc:
            raise DslError(f"bad timeout {fields[1]!r}", line_no) from exc
        pending["timeout"] = (after, fields[2])
        pending["timeout_span"] = span_of(fields[2])
    elif keyword == "servers":
        if len(fields) != 2:
            raise DslError("usage: servers N|inf", line_no)
        pending["servers"] = None if fields[1] == "inf" else int(fields[1])
    elif keyword == "priority":
        if len(fields) != 2:
            raise DslError("usage: priority N", line_no)
        pending["priority"] = int(fields[1])
    else:
        raise DslError(f"unknown transition clause {keyword!r}", line_no)


def to_pnet(net: PetriNet) -> str:
    """Serialize a net back to ``.pnet`` text.

    Transitions created programmatically with Python callables (rather
    than parsed from DSL text) serialize their delay as ``fn: <name>``
    using the callable's ``__name__``; loading such a document requires
    passing the same functions via ``env``.
    """
    lines = [f"net {net.name}", ""]
    for name in net.places:
        place = net.places[name]
        if place.capacity is None:
            lines.append(f"place {name}")
        else:
            lines.append(f"place {name} capacity {place.capacity}")
    for place, decl in getattr(net, "injections", {}).items():
        if decl is None:
            lines.append(f"inject {place}")
        else:
            lines.append(f"inject {place} fields " + " ".join(sorted(decl)))
    for t in net.ordered_transitions():
        lines.append("")
        lines.append(f"transition {t.name}")
        lines.append("  consume " + " ".join(_fmt_arc(a) for a in t.inputs))
        if t.outputs:
            lines.append("  produce " + " ".join(_fmt_arc(a) for a in t.outputs))
        src = getattr(t, "delay_src", None)
        if src is not None:
            lines.append(f"  delay {src}")
        elif callable(t.delay):
            lines.append(f"  delay fn: {t.delay.__name__}")
        else:
            lines.append(f"  delay {float(t.delay)}")
        guard_src = getattr(t, "guard_src", None)
        if guard_src is not None:
            lines.append(f"  guard {guard_src}")
        elif t.guard is not None:
            lines.append(f"  guard fn: {getattr(t.guard, '__name__', 'guard')}")
        if t.timeout is not None:
            after, fault_place = t.timeout
            lines.append(f"  timeout {after} {fault_place}")
        if t.servers != 1:
            lines.append(f"  servers {'inf' if t.servers is None else t.servers}")
        if t.priority != 0:
            lines.append(f"  priority {t.priority}")
    lines.append("")
    return "\n".join(lines)


def _fmt_arc(arc: Arc) -> str:
    return arc.place if arc.weight == 1 else f"{arc.place}:{arc.weight}"
