"""Tokens: the data units that flow through a performance IR net.

A token is a *colored* token in Petri-net terminology: it carries an
arbitrary payload describing the data unit it stands for (an 8x8 JPEG
block, a protobuf field, a VTA instruction, ...).  Transition delay
functions read the payload to compute data-dependent processing delays,
which is what lets a performance IR predict latency for *arbitrary*
workloads rather than a single aggregate number.

Tokens also carry timestamps so that observers can compute end-to-end
latency without any cooperation from the net definition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_token_ids = itertools.count()


@dataclass
class Token:
    """A single data unit flowing through the net.

    Attributes:
        payload: Arbitrary, user-defined data describing the unit.
        born: Simulation time at which the token entered the net.
            ``None`` until the token is injected.
        uid: Unique id, assigned automatically; used for deterministic
            FIFO ordering and for tracing.
        trace: Optional list of ``(transition_name, fire_time)`` pairs
            recording the token's path; filled only when the simulator
            runs with tracing enabled.
    """

    payload: Any = None
    born: float | None = None
    uid: int = field(default_factory=lambda: next(_token_ids))
    trace: list[tuple[str, float]] | None = None

    def aged(self, now: float) -> float:
        """Return time elapsed since the token entered the net."""
        if self.born is None:
            raise ValueError("token was never injected into a net")
        return now - self.born

    def child(self, payload: Any = None) -> Token:
        """Create a derived token inheriting this token's birth time.

        Transitions that split one data unit into several (e.g. an image
        into blocks) should emit children so that end-to-end latency is
        still measured from the original injection time.
        """
        tok = Token(payload=payload if payload is not None else self.payload)
        tok.born = self.born
        if self.trace is not None:
            tok.trace = list(self.trace)
        return tok

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token(uid={self.uid}, born={self.born}, payload={self.payload!r})"
