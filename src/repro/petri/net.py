"""Structural definition of timed, colored Petri nets.

This module defines the *performance IR* data model proposed by the
paper: a Petri net whose places model hardware queues (FIFOs, registers,
DRAM request queues), whose tokens model data units, and whose
transitions model processing elements.  A transition fires when all of
its input places hold enough tokens; firing consumes the tokens,
occupies one of the transition's *servers* for a data-dependent delay,
and then deposits tokens into the output places.

Two features make the model a usable performance IR for accelerators:

* **Place capacities** create backpressure: a transition cannot fire if
  its output places lack space, exactly like a pipeline stage that
  stalls when its downstream FIFO is full.
* **Server counts** model pipelining: ``servers=1`` is a fully serial
  unit (a new firing must wait for the previous one), ``servers=k``
  allows ``k`` overlapping firings, ``servers=None`` is a perfectly
  pipelined unit with unbounded overlap.

The semantics of execution live in :mod:`repro.petri.simulate`; this
module is purely structural so that nets can be analyzed (see
:mod:`repro.petri.analysis`) and serialized without running them.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from .errors import CapacityError, DefinitionError
from .token import Token

#: Type of a delay specification: either a constant (in cycles) or a
#: function of the consumed tokens, keyed by input-place name.
DelaySpec = float | int | Callable[[Mapping[str, Sequence[Token]]], float]

#: Type of a guard: predicate over the tokens that would be consumed.
GuardFn = Callable[[Mapping[str, Sequence[Token]]], bool]

#: Type of a production function: maps consumed tokens to tokens to
#: deposit, keyed by output-place name.  When omitted, the default
#: production forwards children of the first consumed token.
ProduceFn = Callable[[Mapping[str, Sequence[Token]]], Mapping[str, Sequence[Token]]]


@dataclass
class Place:
    """A token queue: models a buffer, register bank, or logical state.

    Attributes:
        name: Unique identifier within the net.
        capacity: Maximum tokens the place may hold, counting space
            *reserved* by in-flight transition firings that will output
            here.  ``None`` means unbounded.
        tokens: FIFO of resident tokens (simulation state).
        reserved: Number of slots reserved by in-flight firings
            (simulation state).
    """

    name: str
    capacity: int | None = None
    tokens: deque[Token] = field(default_factory=deque)
    reserved: int = 0

    def free_slots(self) -> float:
        """Slots available for new reservations (``inf`` if unbounded)."""
        if self.capacity is None:
            return float("inf")
        return self.capacity - len(self.tokens) - self.reserved

    def peek(self, count: int) -> list[Token]:
        """Return the ``count`` oldest tokens without removing them."""
        if len(self.tokens) < count:
            raise ValueError(f"place {self.name!r} holds fewer than {count} tokens")
        return [self.tokens[i] for i in range(count)]

    def take(self, count: int) -> list[Token]:
        """Remove and return the ``count`` oldest tokens (FIFO order)."""
        if len(self.tokens) < count:
            raise ValueError(f"place {self.name!r} holds fewer than {count} tokens")
        return [self.tokens.popleft() for _ in range(count)]

    def put(self, token: Token, *, from_reservation: bool = False) -> None:
        """Deposit ``token``, consuming a reservation when one was made."""
        if from_reservation:
            if self.reserved <= 0:
                raise CapacityError(
                    f"place {self.name!r}: deposit without prior reservation"
                )
            self.reserved -= 1
        elif self.capacity is not None and self.free_slots() < 1:
            raise CapacityError(f"place {self.name!r} is full (capacity {self.capacity})")
        self.tokens.append(token)

    def clear(self) -> None:
        """Drop all tokens and reservations (used by net reset)."""
        self.tokens.clear()
        self.reserved = 0

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class Arc:
    """A weighted edge between a place and a transition."""

    place: str
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise DefinitionError(f"arc to {self.place!r}: weight must be >= 1")


class Transition:
    """A processing element: consumes tokens, delays, produces tokens.

    Args:
        name: Unique identifier within the net.
        inputs: Input arcs.  The transition is enabled when every input
            place holds at least ``weight`` tokens.
        outputs: Output arcs.  Firing reserves ``weight`` slots in every
            output place up front (backpressure), then deposits tokens
            on completion.
        delay: Constant service delay, or a function of the consumed
            tokens (keyed by input-place name) returning the delay.
        guard: Optional predicate over the would-be-consumed tokens;
            the transition is enabled only when it returns ``True``.
        produce: Optional production function; by default, every output
            place receives ``weight`` children of the first consumed
            token, preserving birth timestamps for latency measurement.
        servers: Maximum concurrent firings (``None`` = unbounded).
        priority: Tie-break order when several transitions are enabled
            at the same instant; lower fires first, then name order.
        timeout: Optional fault arc ``(after, place)``: a firing whose
            computed delay exceeds ``after`` *fails* — at ``after``
            cycles the consumed work is dropped, output reservations are
            released, and one fault token (a child of the first consumed
            token) is deposited into ``place`` instead.  This lets a net
            *be* the degradation policy: timeout places model error
            queues the surrounding system drains.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Arc],
        outputs: Sequence[Arc],
        delay: DelaySpec = 0.0,
        guard: GuardFn | None = None,
        produce: ProduceFn | None = None,
        servers: int | None = 1,
        priority: int = 0,
        timeout: tuple[float, str] | None = None,
    ):
        if not inputs:
            raise DefinitionError(
                f"transition {name!r} has no input arcs; use Simulator.inject "
                "to act as a workload source instead of a sourceless transition"
            )
        if servers is not None and servers < 1:
            raise DefinitionError(f"transition {name!r}: servers must be >= 1 or None")
        if timeout is not None and timeout[0] <= 0:
            raise DefinitionError(f"transition {name!r}: timeout must be > 0")
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.delay = delay
        self.guard = guard
        self.produce = produce
        self.servers = servers
        self.priority = priority
        self.timeout = timeout
        #: Deterministic ordering key used by the simulator.
        self.sort_key = (priority, name)
        #: Simulation state: number of currently in-flight firings.
        self.busy = 0
        #: Cumulative statistics maintained by the simulator.
        self.fire_count = 0
        self.busy_time = 0.0

    def compute_delay(self, consumed: Mapping[str, Sequence[Token]]) -> float:
        """Evaluate the delay spec for a particular firing."""
        value = float(self.delay(consumed) if callable(self.delay) else self.delay)
        if value < 0:
            raise DefinitionError(f"transition {self.name!r} computed a negative delay")
        return value

    def default_production(
        self, consumed: Mapping[str, Sequence[Token]]
    ) -> dict[str, list[Token]]:
        """Forward children of the first consumed token to every output."""
        first: Token | None = None
        for arc in self.inputs:
            toks = consumed.get(arc.place)
            if toks:
                first = toks[0]
                break
        out: dict[str, list[Token]] = {}
        for arc in self.outputs:
            if first is None:
                out[arc.place] = [Token() for _ in range(arc.weight)]
            else:
                out[arc.place] = [first.child() for _ in range(arc.weight)]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = "+".join(f"{a.place}:{a.weight}" for a in self.inputs)
        outs = "+".join(f"{a.place}:{a.weight}" for a in self.outputs)
        return f"Transition({self.name!r}, {ins} -> {outs})"


class PetriNet:
    """A named collection of places and transitions.

    The net object owns the structure *and* the marking (token state);
    :meth:`reset` restores the initial empty marking so one net object
    can be simulated repeatedly over different workloads.
    """

    def __init__(self, name: str):
        self.name = name
        self.places: dict[str, Place] = {}
        self.transitions: dict[str, Transition] = {}
        #: Declared external injection points: place -> declared payload
        #: fields (``None`` = payload shape unknown/opaque).  Filled by
        #: the DSL's ``inject`` clause or :meth:`declare_injection`; the
        #: linter uses it to tell workload sources from starved places.
        self.injections: dict[str, frozenset[str] | None] = {}
        #: Source spans for nets parsed from ``.pnet`` text:
        #: ``(kind, name) -> (line, col)`` with kind in {"place",
        #: "transition", "delay", "guard", "inject", "timeout"}.
        #: Empty for programmatically built nets.
        self.source_map: dict[tuple[str, str], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Construction API
    # ------------------------------------------------------------------
    def add_place(self, name: str, capacity: int | None = None) -> Place:
        """Create and register a place; returns it for convenience."""
        if name in self.places:
            raise DefinitionError(f"duplicate place {name!r}")
        if capacity is not None and capacity < 1:
            raise DefinitionError(f"place {name!r}: capacity must be >= 1 or None")
        place = Place(name=name, capacity=capacity)
        self.places[name] = place
        return place

    def add_transition(
        self,
        name: str,
        inputs: Sequence[Arc | str | tuple[str, int]],
        outputs: Sequence[Arc | str | tuple[str, int]] = (),
        **kwargs: Any,
    ) -> Transition:
        """Create and register a transition.

        Arcs may be given as :class:`Arc` objects, bare place names
        (weight 1), or ``(place, weight)`` tuples.
        """
        if name in self.transitions:
            raise DefinitionError(f"duplicate transition {name!r}")
        t = Transition(name, [self._arc(a) for a in inputs], [self._arc(a) for a in outputs], **kwargs)
        for arc in t.inputs + t.outputs:
            if arc.place not in self.places:
                raise DefinitionError(
                    f"transition {name!r} references unknown place {arc.place!r}"
                )
        if t.timeout is not None and t.timeout[1] not in self.places:
            raise DefinitionError(
                f"transition {name!r} timeout references unknown place {t.timeout[1]!r}"
            )
        self.transitions[name] = t
        return t

    def declare_injection(
        self, place: str, fields: Iterable[str] | None = None
    ) -> None:
        """Declare ``place`` as an external injection point.

        ``fields`` names the payload keys injected tokens carry; pass
        ``None`` when the payload is opaque.  The declaration does not
        affect simulation — it documents the workload contract so static
        analysis can check token-field dataflow and starvation.
        """
        if place not in self.places:
            raise DefinitionError(f"injection into unknown place {place!r}")
        self.injections[place] = None if fields is None else frozenset(fields)

    @staticmethod
    def _arc(spec: Arc | str | tuple[str, int]) -> Arc:
        if isinstance(spec, Arc):
            return spec
        if isinstance(spec, str):
            return Arc(spec)
        place, weight = spec
        return Arc(place, weight)

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all tokens, reservations, and statistics."""
        for place in self.places.values():
            place.clear()
        for t in self.transitions.values():
            t.busy = 0
            t.fire_count = 0
            t.busy_time = 0.0

    def marking(self) -> dict[str, int]:
        """Return the current token count per place."""
        return {name: len(p) for name, p in self.places.items()}

    def total_tokens(self) -> int:
        """Total resident tokens across all places."""
        return sum(len(p) for p in self.places.values())

    # ------------------------------------------------------------------
    # Introspection used by analysis / serialization
    # ------------------------------------------------------------------
    def ordered_transitions(self) -> list[Transition]:
        """Transitions in deterministic firing order (priority, name)."""
        return sorted(self.transitions.values(), key=lambda t: (t.priority, t.name))

    def input_places_of(self, transition: str) -> list[str]:
        return [a.place for a in self.transitions[transition].inputs]

    def output_places_of(self, transition: str) -> list[str]:
        return [a.place for a in self.transitions[transition].outputs]

    def validate(self) -> list[str]:
        """Return a list of structural warnings (empty = clean).

        Checks: places never read, places never written (other than by
        injection, which the checker cannot see — those are reported as
        informational "source" entries), transitions whose output
        capacity can never satisfy a single firing.
        """
        warnings: list[str] = []
        read: set[str] = set()
        written: set[str] = set()
        for t in self.transitions.values():
            read.update(a.place for a in t.inputs)
            written.update(a.place for a in t.outputs)
            for arc in t.outputs:
                cap = self.places[arc.place].capacity
                if cap is not None and arc.weight > cap:
                    warnings.append(
                        f"transition {t.name!r} outputs {arc.weight} tokens to "
                        f"{arc.place!r} whose capacity is only {cap}: can never fire"
                    )
        for name in self.places:
            if name not in read and name not in written:
                warnings.append(f"place {name!r} is disconnected")
            elif name not in read:
                warnings.append(f"place {name!r} is a sink (never consumed)")
        return [w for w in warnings if not w.endswith("(never consumed)")] + [
            w for w in warnings if w.endswith("(never consumed)")
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PetriNet({self.name!r}, {len(self.places)} places, "
            f"{len(self.transitions)} transitions)"
        )


def chain(
    net: PetriNet,
    stages: Iterable[tuple[str, DelaySpec]],
    *,
    first_place: str = "in",
    last_place: str = "out",
    capacity: int | None = None,
    servers: int | None = 1,
) -> None:
    """Convenience builder: a linear pipeline of stages joined by FIFOs.

    Creates ``first_place -> stage1 -> q1 -> stage2 -> ... -> last_place``
    with every intermediate place given ``capacity``.  This is the most
    common accelerator topology and keeps hand-written interface nets
    short, which matters for the Table 1 complexity metric.
    """
    stages = list(stages)
    if not stages:
        raise DefinitionError("chain requires at least one stage")
    net.add_place(first_place)
    prev = first_place
    for i, (name, delay) in enumerate(stages):
        is_last = i == len(stages) - 1
        nxt = last_place if is_last else f"q_{name}"
        net.add_place(nxt, capacity=None if is_last else capacity)
        net.add_transition(name, [prev], [nxt], delay=delay, servers=servers)
        prev = nxt
