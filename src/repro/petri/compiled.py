"""Compiled fast-path engine for the performance IR.

The reference :class:`~repro.petri.simulate.Simulator` is written for
clarity: it allocates a closure per firing, heap-pushes ``_Event``
dataclasses, and re-sorts ``Transition`` objects per instant.  That
interpreter overhead is paid *per token* by every sweep-shaped consumer
(validation, autotuning, fault sweeps) — exactly the cost the paper says
the Petri-net representation exists to avoid.

This module lowers a static :class:`~repro.petri.net.PetriNet` once into
a flat, integer-indexed form and executes it with a tight loop:

* places and transitions become array indices (transition index order
  *is* the deterministic ``(priority, name)`` firing order, so the dirty
  set is a set of ints and sorting it needs no key function);
* arc lists are flat ``(place_idx, weight)`` tuples resolved at compile
  time;
* events are plain ``(time, seq, kind, transition_idx, token, t0)``
  tuples on one heap — no per-firing closures, no event dataclass;
* token payloads stay in the same :class:`~repro.petri.token.Token`
  objects the reference engine uses, so guards and delay callables are
  pre-bound once and receive byte-identical inputs.

Semantics are *identical* to the reference engine — same firing order,
same budget accounting, same error messages, same ``SimResult`` — and
:mod:`repro.petri.differential` asserts this on every shipped
accelerator net and on randomized structural nets.

Fallback rules (see ``docs/performance.md``): the fast path refuses nets
that use features it does not specialize — currently custom ``produce``
hooks (arbitrary token fabrication) and per-token ``trace`` recording —
and :func:`make_simulator` transparently falls back to the reference
engine for them.  Everything else (weighted arcs, capacities, guards,
callable delays, multi-server transitions, priorities, timeout fault
arcs) runs on the fast path.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Iterable, Sequence
from heapq import heappop, heappush
from typing import Any, Literal

from .errors import CapacityError, DeadlineError, DeadlockError, DefinitionError, SimulationError
from .net import PetriNet
from .simulate import Completion, SimResult, Simulator
from .token import Token, _token_ids

#: Engine selector values accepted by :func:`make_simulator` and the
#: ``pnet run --engine`` flag.
EngineName = Literal["auto", "reference", "compiled"]

ENGINES: tuple[str, ...] = ("auto", "reference", "compiled")

#: Environment override for the default engine choice (used by the CI
#: parity job to force-run suites on one engine).
ENGINE_ENV_VAR = "REPRO_PETRI_ENGINE"

# Event kinds, ordered only for readability — (time, seq) alone decides
# heap order because seq is unique.  (Injections never touch the heap:
# they are all known before the run starts and always sort before
# engine-generated events at the same instant, so the run loop merges
# them from a sorted side list.)
_COMPLETE, _FAIL = 1, 2


def default_engine() -> str:
    """The session-wide engine choice: ``$REPRO_PETRI_ENGINE`` or auto."""
    engine = os.environ.get(ENGINE_ENV_VAR, "auto")
    if engine not in ENGINES:
        raise ValueError(
            f"{ENGINE_ENV_VAR}={engine!r} is not one of {', '.join(ENGINES)}"
        )
    return engine


def unsupported_features(net: PetriNet, *, trace: bool = False) -> list[str]:
    """Why the fast path cannot run ``net`` (empty list = it can).

    The reasons are part of the documented contract: authors reading a
    fallback log line should be able to tell which net feature to drop
    to get back on the fast path.
    """
    reasons: list[str] = []
    if trace:
        reasons.append("trace=True records per-token paths (reference engine only)")
    for t in net.ordered_transitions():
        if t.produce is not None:
            reasons.append(
                f"transition {t.name!r} has a custom produce hook "
                "(arbitrary token fabrication is not specialized)"
            )
    return reasons


def supports(net: PetriNet, *, trace: bool = False) -> bool:
    """True when the compiled engine can run ``net`` exactly."""
    return not unsupported_features(net, trace=trace)


class CompiledNet:
    """A :class:`PetriNet` lowered to flat, integer-indexed arrays.

    Compile once, simulate many times: the lowering cost is paid per
    *net*, not per run, so sweeps amortize it across thousands of
    points.  The compiled form never mutates — all simulation state
    lives in the :class:`CompiledSimulator` run that uses it.
    """

    __slots__ = (
        "net",
        "place_names",
        "place_index",
        "capacity",
        "t_names",
        "t_index",
        "t_in",
        "t_out",
        "t_in_names",
        "t_delay_const",
        "t_delay_fn",
        "t_guard",
        "t_servers",
        "t_timeout_after",
        "t_timeout_place",
        "consumers",
        "producers",
        "consumers_mask",
        "producers_mask",
        "t_wake_fire",
        "t_fast",
        "t_out1",
        "t_outw",
    )

    def __init__(self, net: PetriNet):
        reasons = unsupported_features(net)
        if reasons:
            raise SimulationError(
                f"net {net.name!r} cannot be compiled: " + "; ".join(reasons)
            )
        self.net = net
        self.place_names: list[str] = list(net.places)
        self.place_index = {name: i for i, name in enumerate(self.place_names)}
        self.capacity = [net.places[n].capacity for n in self.place_names]

        ordered = net.ordered_transitions()
        self.t_names = [t.name for t in ordered]
        self.t_index = {t.name: i for i, t in enumerate(ordered)}
        pidx = self.place_index
        self.t_in = [
            tuple((pidx[a.place], a.weight) for a in t.inputs) for t in ordered
        ]
        self.t_out = [
            tuple((pidx[a.place], a.weight) for a in t.outputs) for t in ordered
        ]
        self.t_in_names = [tuple(a.place for a in t.inputs) for t in ordered]
        self.t_delay_const: list[float | None] = [
            None if callable(t.delay) else float(t.delay) for t in ordered
        ]
        self.t_delay_fn = [t.delay if callable(t.delay) else None for t in ordered]
        self.t_guard = [t.guard for t in ordered]
        self.t_servers = [t.servers for t in ordered]
        self.t_timeout_after = [
            None if t.timeout is None else float(t.timeout[0]) for t in ordered
        ]
        self.t_timeout_place = [
            -1 if t.timeout is None else pidx[t.timeout[1]] for t in ordered
        ]

        consumers: list[list[int]] = [[] for _ in self.place_names]
        producers: list[list[int]] = [[] for _ in self.place_names]
        for ti, t in enumerate(ordered):
            for a in t.inputs:
                consumers[pidx[a.place]].append(ti)
            for a in t.outputs:
                producers[pidx[a.place]].append(ti)
        self.consumers = [tuple(c) for c in consumers]
        self.producers = [tuple(p) for p in producers]

        # Dirty sets are int bitmasks (bit ti = transition ti needs an
        # enablement re-check): set-union becomes a single ``|=`` and
        # ascending bit-scan recovers the deterministic index order that
        # the reference engine gets from sorting.
        self.consumers_mask = [
            sum(1 << ti for ti in c) for c in self.consumers
        ]
        self.producers_mask = [
            sum(1 << ti for ti in p) for p in self.producers
        ]

        # Minimal wake mask for a *firing* of transition ``ti``.  During
        # a fire_all pass token counts only decrease (deposits happen at
        # completion events, between passes), so a firing can newly
        # enable exactly: producers of its input places (capacity
        # freed), and guarded sibling consumers of those places (the
        # head token they see changed).  The reference engine wakes all
        # consumers+producers; the extra members are provably disabled,
        # so dropping them is unobservable.  (Like the reference engine,
        # this assumes guards are pure functions of the peeked tokens.)
        self.t_wake_fire = []
        for ti, t in enumerate(ordered):
            wake = 0
            for a in t.inputs:
                wake |= self.producers_mask[pidx[a.place]]
                for cc in self.consumers[pidx[a.place]]:
                    if cc != ti and self.t_guard[cc] is not None:
                        wake |= 1 << cc
            self.t_wake_fire.append(wake)
        # The dominant accelerator idiom — one input arc, one output
        # arc, no timeout — gets a fully inlined firing loop driven by
        # one precomputed spec tuple: (in_place, in_weight, out_place,
        # out_weight, in_name, guard, delay_fn, delay_const, wake,
        # plain).  ``plain`` flags the tightest tier: weight-1 arcs,
        # constant delay, no guard — a loop with zero per-firing branch
        # tests.
        self.t_fast: list[tuple | None] = []
        for ti, t in enumerate(ordered):
            fast = (
                len(t.inputs) == 1
                and len(t.outputs) == 1
                and t.timeout is None
                and (self.t_delay_const[ti] is None or self.t_delay_const[ti] >= 0)
            )
            self.t_fast.append(
                (
                    self.t_in[ti][0][0],
                    self.t_in[ti][0][1],
                    self.t_out[ti][0][0],
                    self.t_out[ti][0][1],
                    t.inputs[0].place,
                    t.guard,
                    self.t_delay_fn[ti],
                    self.t_delay_const[ti],
                    self.t_wake_fire[ti],
                    t.guard is None
                    and self.t_delay_fn[ti] is None
                    and self.t_in[ti][0][1] == 1
                    and self.t_out[ti][0][1] == 1,
                )
                if fast
                else None
            )
        # Completion fast paths: the weight-1 single output place (or
        # -1), and ``(place, weight)`` of any single output arc.
        self.t_out1 = [
            self.t_out[ti][0][0]
            if len(self.t_out[ti]) == 1 and self.t_out[ti][0][1] == 1
            else -1
            for ti in range(len(ordered))
        ]
        self.t_outw = [
            self.t_out[ti][0] if len(self.t_out[ti]) == 1 else None
            for ti in range(len(ordered))
        ]


class CompiledSimulator:
    """Drop-in replacement for :class:`Simulator` on compiled nets.

    Same constructor shape (minus ``trace``, which the fast path does
    not support), same ``inject``/``inject_stream``/``run`` API, and —
    by differential test — the same results.  Pass a pre-built
    :class:`CompiledNet` to share one lowering across many simulators.

    ``tracer`` (see :class:`repro.obs.Tracer`) emits the same firing
    spans as the reference engine.  Spans are recorded when completion
    events pop off the heap — the event tuples already carry the fire
    time — so the inlined firing loops pay nothing, and a run without a
    tracer pays one predictable branch per event (benchmarked < 3%
    in ``benchmarks/bench_petri_engine.py``).
    """

    MAX_FIRINGS_PER_INSTANT = Simulator.MAX_FIRINGS_PER_INSTANT

    def __init__(
        self,
        net: PetriNet,
        sinks: Sequence[str] = ("out",),
        *,
        compiled: CompiledNet | None = None,
        tracer=None,
    ):
        for s in sinks:
            if s not in net.places:
                raise SimulationError(f"sink {s!r} is not a place of net {net.name!r}")
        if compiled is not None and compiled.net is not net:
            raise SimulationError("compiled form belongs to a different net object")
        self.net = net
        self.sinks = list(sinks)
        self.compiled = compiled if compiled is not None else CompiledNet(net)
        self.tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._pending: list[tuple[float, str, Token]] = []

    # ------------------------------------------------------------------
    # Workload injection (same contract as the reference engine)
    # ------------------------------------------------------------------
    def inject(self, place: str, payload: Any = None, at: float = 0.0) -> Token:
        """Schedule a token carrying ``payload`` to enter ``place`` at ``at``."""
        if place not in self.net.places:
            raise SimulationError(f"unknown place {place!r}")
        token = payload if isinstance(payload, Token) else Token(payload=payload)
        self._pending.append((at, place, token))
        return token

    def inject_stream(
        self, place: str, payloads: Iterable[Any], *, start: float = 0.0, gap: float = 0.0
    ) -> list[Token]:
        """Inject one token per payload, ``gap`` time units apart."""
        if place not in self.net.places:
            raise SimulationError(f"unknown place {place!r}")
        tokens = []
        t = start
        pending = self._pending.append
        new_token = Token.__new__
        next_uid = _token_ids.__next__
        for payload in payloads:
            if isinstance(payload, Token):
                token = payload
            else:
                token = new_token(Token)
                token.payload = payload
                token.born = None
                token.uid = next_uid()
                token.trace = None
            pending((t, place, token))
            tokens.append(token)
            t += gap
        return tokens

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: float | None = None,
        max_time: float | None = None,
        on_deadlock: Literal["stop", "raise"] = "stop",
        on_deadline: Literal["stop", "raise"] = "stop",
    ) -> SimResult:
        """Execute until quiescence (or ``until``), returning the result.

        Mirrors :meth:`Simulator.run` exactly, including the ``max_time``
        watchdog and deadlock detection.
        """
        c = self.compiled
        net = self.net
        n_places = len(c.place_names)
        n_trans = len(c.t_names)

        # --- run state: flat arrays, no Place/Transition mutation until
        # the final write-back.
        tokens: list[deque[Token]] = [deque() for _ in range(n_places)]
        reserved = [0] * n_places
        busy = [0] * n_trans
        fire_count = [0] * n_trans
        busy_time = [0.0] * n_trans
        completions: dict[str, list[Completion]] = {s: [] for s in self.sinks}
        # Per-place completion list (None = not a sink).
        comp_of: list[list[Completion] | None] = [
            completions.get(name) if name in completions else None
            for name in c.place_names
        ]

        events: list[tuple[float, int, int, int, Token | None, float]] = []
        seq = 0
        now = 0.0
        dirty = 0  # bitmask: bit ti = re-check transition ti

        # Local aliases: the hot loop reads these thousands of times.
        t_in, t_out = c.t_in, c.t_out
        t_in_names = c.t_in_names
        t_delay_const, t_delay_fn = c.t_delay_const, c.t_delay_fn
        t_guard, t_servers = c.t_guard, c.t_servers
        t_timeout_after, t_timeout_place = c.t_timeout_after, c.t_timeout_place
        consumers, producers = c.consumers, c.producers
        consumers_mask, producers_mask = c.consumers_mask, c.producers_mask
        capacity = c.capacity
        place_names = c.place_names
        t_names = c.t_names
        t_wake_fire, t_fast = c.t_wake_fire, c.t_fast
        t_out1, t_outw = c.t_out1, c.t_outw
        new_token = Token.__new__
        new_comp = Completion.__new__
        next_uid = _token_ids.__next__
        tracer = self.tracer
        net_name = net.name
        # Per-transition span categories, precomputed so the per-event
        # trace branch allocates nothing (guard attribution included).
        trace_cat = (
            ["petri.guarded" if g is not None else "petri.fire" for g in t_guard]
            if tracer is not None
            else None
        )

        # Combined wake mask applied when a single-output transition
        # completes: its own server frees up, plus either readers of the
        # deposited place or — for sink places, where the token leaves
        # the net — writers whose capacity was freed.
        wake_done: list[int] = []
        # Reusable ``consumed`` argument per fast transition with a
        # guard or delay callable (fresh-dict cost avoided; callables
        # must not retain or mutate their argument — same contract the
        # reference engine's documentation imposes).
        guard_slots: list[list[Token | None] | None] = []
        guard_dicts: list[dict[str, list[Token | None]] | None] = []
        for ti in range(n_trans):
            ow = t_outw[ti]
            if ow is None:
                wake_done.append(1 << ti)
            else:
                p, _ = ow
                base = producers_mask[p] if comp_of[p] is not None else consumers_mask[p]
                wake_done.append(base | (1 << ti))
            fast = t_fast[ti]
            if fast is not None and fast[1] == 1 and (
                fast[5] is not None or fast[6] is not None
            ):
                slot: list[Token | None] = [None]
                guard_slots.append(slot)
                guard_dicts.append({fast[4]: slot})
            else:
                guard_slots.append(None)
                guard_dicts.append(None)

        # Injections never interleave with engine-generated events at
        # the same (time, seq) — they were all scheduled first, so at
        # any instant they apply before completions.  Keeping them in a
        # sorted side list instead of the heap skips two heap ops per
        # token.
        inj = sorted(
            (at, tok.uid, c.place_index[pl], tok) for at, pl, tok in self._pending
        )
        self._pending.clear()
        first_injection = inj[0][0] if inj else None
        if inj and inj[0][0] < now:
            raise SimulationError(
                f"event scheduled in the past ({inj[0][0]} < {now})"
            )
        inj_i, inj_n = 0, len(inj)

        def deposit(p: int, token: Token, from_reservation: bool) -> None:
            nonlocal dirty
            comps = comp_of[p]
            if comps is not None:
                if from_reservation:
                    reserved[p] -= 1
                    # A sink deposit releases reserved capacity: writers
                    # of this place may become enabled again.
                    dirty |= producers_mask[p]
                comps.append(Completion(time=now, token=token))
                return
            if from_reservation:
                if reserved[p] <= 0:
                    raise CapacityError(
                        f"place {place_names[p]!r}: deposit without prior reservation"
                    )
                reserved[p] -= 1
            else:
                cap = capacity[p]
                if cap is not None and cap - len(tokens[p]) - reserved[p] < 1:
                    raise CapacityError(
                        f"place {place_names[p]!r} is full (capacity {cap})"
                    )
            tokens[p].append(token)
            dirty |= consumers_mask[p]

        budget = self.MAX_FIRINGS_PER_INSTANT

        def fire_all() -> None:
            nonlocal seq, dirty
            fired = 0
            while dirty:
                # Ascending bit-scan == the reference's sorted batch.
                batch = dirty
                dirty = 0
                while batch:
                    low = batch & -batch
                    batch -= low
                    ti = low.bit_length() - 1
                    # --- fully inlined loop for the dominant idiom:
                    # one input arc, one output arc, no timeout (guards,
                    # weights and callable delays allowed).  Cheap bail
                    # first: most wake-ups find nothing to fire.
                    fast = t_fast[ti]
                    if fast is not None:
                        dq = tokens[fast[0]]
                        if len(dq) < fast[1]:
                            continue
                        servers = t_servers[ti]
                        if servers is not None and busy[ti] >= servers:
                            continue
                        if fast[9]:
                            # Tightest tier: weight-1 arcs, constant
                            # delay, no guard — nothing to test per
                            # firing.
                            p_out = fast[2]
                            delay_c = fast[7]
                            wake = fast[8]
                            cap = capacity[p_out]
                            out_dq = tokens[p_out]
                            while (
                                dq
                                and (servers is None or busy[ti] < servers)
                                and (
                                    cap is None
                                    or cap - len(out_dq) - reserved[p_out] >= 1
                                )
                            ):
                                first = dq.popleft()
                                reserved[p_out] += 1
                                dirty |= wake
                                busy[ti] += 1
                                fire_count[ti] += 1
                                busy_time[ti] += delay_c
                                fired += 1
                                if fired > budget:
                                    raise SimulationError(
                                        f"net {net.name!r}: more than {budget} "
                                        f"firings at t={now}; likely a zero-delay loop"
                                    )
                                heappush(
                                    events, (now + delay_c, seq, _COMPLETE, ti, first, now)
                                )
                                seq += 1
                            continue
                        _, w_in, p_out, w_out, in_name, guard, delay_fn, delay_c, wake, _ = fast
                        cap = capacity[p_out]
                        out_dq = tokens[p_out]
                        while (
                            len(dq) >= w_in
                            and (servers is None or busy[ti] < servers)
                            and (
                                cap is None
                                or cap - len(out_dq) - reserved[p_out] >= w_out
                            )
                        ):
                            if guard is not None or delay_fn is not None:
                                slot = guard_slots[ti]
                                if slot is not None:
                                    slot[0] = dq[0]
                                    consumed = guard_dicts[ti]
                                else:
                                    consumed = {
                                        in_name: [dq[i] for i in range(w_in)]
                                    }
                                if guard is not None and not guard(consumed):
                                    break
                            first = dq.popleft()
                            if w_in != 1:
                                for _ in range(w_in - 1):
                                    dq.popleft()
                            reserved[p_out] += w_out
                            dirty |= wake
                            if delay_fn is None:
                                delay = delay_c
                            else:
                                delay = float(delay_fn(consumed))
                                if delay < 0:
                                    raise DefinitionError(
                                        f"transition {t_names[ti]!r} computed "
                                        "a negative delay"
                                    )
                            busy[ti] += 1
                            fire_count[ti] += 1
                            busy_time[ti] += delay
                            fired += 1
                            if fired > budget:
                                raise SimulationError(
                                    f"net {net.name!r}: more than {budget} "
                                    f"firings at t={now}; likely a zero-delay loop"
                                )
                            heappush(events, (now + delay, seq, _COMPLETE, ti, first, now))
                            seq += 1
                        continue
                    servers = t_servers[ti]
                    guard = t_guard[ti]
                    delay_fn = t_delay_fn[ti]
                    ins = t_in[ti]
                    outs = t_out[ti]
                    while True:
                        # --- enabled? (same check order as the reference)
                        if servers is not None and busy[ti] >= servers:
                            break
                        enabled = True
                        for p, w in ins:
                            if len(tokens[p]) < w:
                                enabled = False
                                break
                        if enabled:
                            for p, w in outs:
                                cap = capacity[p]
                                if cap is not None and cap - len(tokens[p]) - reserved[p] < w:
                                    enabled = False
                                    break
                        if not enabled:
                            break
                        consumed: dict[str, list[Token]] | None = None
                        if guard is not None or delay_fn is not None:
                            names = t_in_names[ti]
                            consumed = {}
                            for (p, w), name in zip(ins, names, strict=True):
                                dq = tokens[p]
                                consumed[name] = (
                                    [dq[0]] if w == 1 else [dq[i] for i in range(w)]
                                )
                            if guard is not None and not guard(consumed):
                                break
                        # --- fire: consume inputs, reserve outputs.
                        first: Token | None = None
                        for p, w in ins:
                            dq = tokens[p]
                            if len(dq) < w:
                                raise ValueError(
                                    f"place {place_names[p]!r} holds fewer than {w} tokens"
                                )
                            if first is None:
                                first = dq[0]
                            for _ in range(w):
                                dq.popleft()
                        for p, w in outs:
                            reserved[p] += w
                        dirty |= t_wake_fire[ti]
                        delay = (
                            float(delay_fn(consumed))
                            if delay_fn is not None
                            else t_delay_const[ti]
                        )
                        if delay < 0:
                            raise DefinitionError(
                                f"transition {t_names[ti]!r} computed a negative delay"
                            )
                        busy[ti] += 1
                        fire_count[ti] += 1
                        fired += 1
                        if fired > budget:
                            raise SimulationError(
                                f"net {net.name!r}: more than {budget} "
                                f"firings at t={now}; likely a zero-delay loop"
                            )
                        after = t_timeout_after[ti]
                        if after is not None and delay > after:
                            # Fault arc: abandon the work at the deadline
                            # (see the reference engine for the contract).
                            busy_time[ti] += after
                            heappush(events, (now + after, seq, _FAIL, ti, first, now))
                        else:
                            busy_time[ti] += delay
                            heappush(events, (now + delay, seq, _COMPLETE, ti, first, now))
                        seq += 1

        deadline_exceeded = False
        inf = float("inf")
        # One compare per instant: the reference checks max_time before
        # until, so the merged hurdle resolves ties the same way.
        hurdle = inf if max_time is None else max_time
        if until is not None and until < hurdle:
            hurdle = until
        while True:
            t = events[0][0] if events else inf
            if inj_i < inj_n:
                t_inj = inj[inj_i][0]
                if t_inj < t:
                    t = t_inj
            elif not events:
                break
            if t > hurdle:
                if max_time is not None and t > max_time:
                    now = max_time
                    deadline_exceeded = True
                else:
                    now = until
                break
            now = t
            while inj_i < inj_n and inj[inj_i][0] == t:
                idx, tok = inj[inj_i][2], inj[inj_i][3]
                inj_i += 1
                tok.born = t
                comps = comp_of[idx]
                if comps is not None:
                    comp = new_comp(Completion)
                    comp.time = t
                    comp.token = tok
                    comps.append(comp)
                else:
                    cap = capacity[idx]
                    if cap is not None and cap - len(tokens[idx]) - reserved[idx] < 1:
                        raise CapacityError(
                            f"place {place_names[idx]!r} is full (capacity {cap})"
                        )
                    tokens[idx].append(tok)
                    dirty |= consumers_mask[idx]
            while events and events[0][0] == t:
                _, _, kind, idx, tok, t0 = heappop(events)
                if tracer is not None:
                    if kind == _COMPLETE:
                        tracer.add_span(
                            t_names[idx], t0, t, cat=trace_cat[idx], tid=net_name
                        )
                    else:
                        tracer.add_span(
                            f"{t_names[idx]}!timeout",
                            t0,
                            t,
                            cat="petri.timeout",
                            tid=net_name,
                        )
                if kind == _COMPLETE:
                    # Single output arc: the first child of the consumed
                    # token has the same payload/born/trace, so reuse
                    # the (otherwise dead) token object instead of
                    # fabricating a child per hop; extra weight copies
                    # are fabricated inline.
                    p = t_out1[idx]
                    if p >= 0:
                        if tok.born is None:
                            tok.born = t0
                        reserved[p] -= 1
                        comps = comp_of[p]
                        if comps is not None:
                            comp = new_comp(Completion)
                            comp.time = now
                            comp.token = tok
                            comps.append(comp)
                        else:
                            tokens[p].append(tok)
                        dirty |= wake_done[idx]
                        busy[idx] -= 1
                    elif (ow := t_outw[idx]) is not None:
                        p, w = ow
                        if tok.born is None:
                            tok.born = t0
                        reserved[p] -= w
                        comps = comp_of[p]
                        if comps is not None:
                            comp = new_comp(Completion)
                            comp.time = now
                            comp.token = tok
                            comps.append(comp)
                        else:
                            tokens[p].append(tok)
                        payload, born, trace = tok.payload, tok.born, tok.trace
                        for _ in range(w - 1):
                            child = new_token(Token)
                            child.payload = payload
                            child.born = born
                            child.uid = next_uid()
                            child.trace = None if trace is None else list(trace)
                            if comps is not None:
                                comp = new_comp(Completion)
                                comp.time = now
                                comp.token = child
                                comps.append(comp)
                            else:
                                tokens[p].append(child)
                        dirty |= wake_done[idx]
                        busy[idx] -= 1
                    else:
                        for p, w in t_out[idx]:
                            for _ in range(w):
                                child = tok.child()
                                if child.born is None:
                                    child.born = t0
                                deposit(p, child, True)
                        busy[idx] -= 1
                        dirty |= 1 << idx  # a server freed up
                else:  # _FAIL: release reservations, emit one fault token
                    for p, w in t_out[idx]:
                        reserved[p] -= w
                        dirty |= producers_mask[p]
                    fault = tok.child() if tok is not None else Token()
                    deposit(t_timeout_place[idx], fault, False)
                    busy[idx] -= 1
                    dirty |= 1 << idx
            fire_all()

        self._write_back(tokens, reserved, busy, fire_count, busy_time)
        deadlocked = False
        residual = sum(len(dq) for dq in tokens)
        in_flight = any(busy)
        if residual > 0 and not in_flight and not events and inj_i >= inj_n:
            deadlocked = True
            if on_deadlock == "raise":
                raise DeadlockError(
                    f"net {net.name!r} starved with {residual} resident tokens: "
                    f"marking={net.marking()}"
                )

        result = SimResult(
            end_time=now,
            completions=completions,
            fired={name: net.transitions[name].fire_count for name in net.transitions},
            deadlocked=deadlocked,
            residual_tokens=residual,
            deadline_exceeded=deadline_exceeded,
            first_injection=first_injection,
        )
        if deadline_exceeded and on_deadline == "raise":
            done = sum(len(comp) for comp in completions.values())
            pending = len(events) + (inj_n - inj_i)
            raise DeadlineError(
                f"net {net.name!r} exceeded max_time={max_time} with "
                f"{pending} events pending ({done} completions so far)",
                result=result,
            )
        return result

    def _write_back(
        self,
        tokens: list[deque[Token]],
        reserved: list[int],
        busy: list[int],
        fire_count: list[int],
        busy_time: list[float],
    ) -> None:
        """Mirror final run state into the net's Place/Transition objects.

        Callers introspect ``net.marking()`` and per-transition counters
        after a run (deadlock reporting, utilization stats); keeping the
        net in the same end state as a reference run preserves that.
        """
        c = self.compiled
        for i, name in enumerate(c.place_names):
            place = self.net.places[name]
            place.tokens = tokens[i]
            place.reserved = reserved[i]
        for i, name in enumerate(c.t_names):
            t = self.net.transitions[name]
            t.busy = busy[i]
            t.fire_count = fire_count[i]
            t.busy_time = busy_time[i]


def make_simulator(
    net: PetriNet,
    sinks: Sequence[str] = ("out",),
    *,
    trace: bool = False,
    engine: str | None = None,
    compiled: CompiledNet | None = None,
    tracer=None,
) -> Simulator | CompiledSimulator:
    """Build the right engine for ``net``.

    ``engine`` is ``"auto"`` (compiled when supported, reference
    otherwise), ``"reference"``, or ``"compiled"`` (raises
    :class:`SimulationError` naming the unsupported features when the
    net cannot be compiled).  ``None`` defers to
    ``$REPRO_PETRI_ENGINE``/auto.  ``compiled`` shares a pre-built
    :class:`CompiledNet` across simulators in a sweep.  ``tracer``
    (:class:`repro.obs.Tracer`) records per-firing spans on either
    engine without affecting results.
    """
    if engine is None:
        engine = default_engine()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}")
    if engine == "reference":
        return Simulator(net, sinks, trace=trace, tracer=tracer)
    reasons = unsupported_features(net, trace=trace)
    if engine == "compiled":
        if reasons:
            raise SimulationError(
                f"engine='compiled' cannot run net {net.name!r}: " + "; ".join(reasons)
            )
        return CompiledSimulator(net, sinks, compiled=compiled, tracer=tracer)
    if reasons:
        return Simulator(net, sinks, trace=trace, tracer=tracer)
    return CompiledSimulator(net, sinks, compiled=compiled, tracer=tracer)
