"""Program-family lint passes: audits of executable interface functions.

A program interface (``repro.core.program.ProgramInterface``) is a
small Python function a consumer runs to predict latency.  Before
running vendor code in a design loop, the consumer wants static
assurance that the function is a *model* and not a program with
side effects: pure, deterministic, terminating, and only reading
workload features that actually exist.

These passes analyze the function's source via :mod:`ast`.  Functions
whose source cannot be recovered (builtins, C extensions, lambdas
defined in a REPL) are skipped rather than guessed at.

Rule ids are ``PG0xx``; the catalog lives in ``docs/perf-lint.md``.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from .diagnostics import Diagnostic, Severity, SourceLocation
from .registry import rule

#: Bare calls that do I/O — a performance model has no business doing any.
IO_CALLS = frozenset({"open", "print", "input", "breakpoint"})

#: Module roots whose use means the function touches the outside world.
IO_MODULES = frozenset(
    {"os", "sys", "subprocess", "socket", "shutil", "pathlib", "io", "requests"}
)

#: Module roots whose use makes two evaluations disagree.
NONDET_MODULES = frozenset({"random", "secrets", "uuid", "time", "datetime"})


@dataclass
class ProgramLintContext:
    """Everything a program-family rule may look at."""

    fn: Callable[..., Any]
    role: str = "latency"
    workload_type: type | None = None
    accelerator: str | None = None

    def __post_init__(self) -> None:
        self.name = getattr(self.fn, "__name__", repr(self.fn))
        self.filename: str | None = None
        self.tree: ast.FunctionDef | None = None
        self.param: str | None = None
        try:
            src = textwrap.dedent(inspect.getsource(self.fn))
            module = ast.parse(src)
        except (OSError, TypeError, SyntaxError):
            return
        fndefs = [
            n
            for n in module.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not fndefs:
            return
        tree = fndefs[0]
        code = getattr(self.fn, "__code__", None)
        if code is not None:
            ast.increment_lineno(module, code.co_firstlineno - tree.lineno)
            self.filename = code.co_filename
        self.tree = tree
        if tree.args.args:
            self.param = tree.args.args[0].arg

    # ------------------------------------------------------------------
    def features(self) -> frozenset[str] | None:
        """Legal attribute names on the workload item, or None if unknown."""
        wt = self.workload_type
        if wt is None:
            return None
        names: set[str] = set()
        if dataclasses.is_dataclass(wt):
            names.update(f.name for f in dataclasses.fields(wt))
        names.update(n for n in dir(wt) if not n.startswith("_"))
        return frozenset(names)

    def loc(self, node: ast.AST | None = None) -> SourceLocation:
        if node is not None and hasattr(node, "lineno"):
            return SourceLocation(
                file=self.filename, line=node.lineno, col=node.col_offset + 1
            )
        if self.tree is not None:
            return SourceLocation(file=self.filename, line=self.tree.lineno, col=1)
        return SourceLocation(file=self.filename)

    def diag(
        self,
        rule_id: str,
        severity: Severity,
        message: str,
        *,
        node: ast.AST | None = None,
        hint: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=rule_id,
            severity=severity,
            message=message,
            location=self.loc(node),
            subject=self.name,
            hint=hint,
        )


def _root_name(node: ast.expr) -> str | None:
    """Leftmost Name of a dotted chain: ``np.random.rand`` -> ``np``."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _dotted(node: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


@rule("PG001", "program", "Interface function performs I/O")
def check_purity_io(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id in IO_CALLS:
            yield ctx.diag(
                "PG001",
                Severity.ERROR,
                f"interface function {ctx.name!r} calls {node.func.id}(): a "
                f"performance model must not perform I/O",
                node=node,
                hint="return the value instead of printing/reading it",
            )
        elif isinstance(node.func, ast.Attribute):
            root = _root_name(node.func)
            if root in IO_MODULES:
                yield ctx.diag(
                    "PG001",
                    Severity.ERROR,
                    f"interface function {ctx.name!r} calls "
                    f"{_dotted(node.func)}(): a performance model must not "
                    f"touch the environment",
                    node=node,
                    hint="compute from the workload item only",
                )


@rule("PG002", "program", "Interface function is nondeterministic")
def check_determinism(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = None
        if isinstance(node.func, ast.Attribute):
            root = _root_name(node.func)
            chain = _dotted(node.func)
            if root in NONDET_MODULES or ".random." in f".{chain}.":
                dotted = chain
        elif isinstance(node.func, ast.Name) and node.func.id in ("vars", "id"):
            dotted = node.func.id
        if dotted is not None:
            yield ctx.diag(
                "PG002",
                Severity.ERROR,
                f"interface function {ctx.name!r} calls {dotted}(): two "
                f"evaluations on the same workload would disagree",
                node=node,
                hint="a performance interface must be a deterministic "
                "function of the workload item",
            )


@rule("PG003", "program", "Interface function mutates global state")
def check_global_mutation(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            yield ctx.diag(
                "PG003",
                Severity.ERROR,
                f"interface function {ctx.name!r} declares "
                f"{kind} {', '.join(node.names)}: evaluating the model "
                f"changes state outside it",
                node=node,
                hint="thread the value through parameters and return values",
            )


@rule("PG004", "program", "Loop has no statically visible termination")
def check_loop_termination(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.While):
            continue
        has_break = any(
            isinstance(inner, ast.Break)
            for stmt in node.body
            for inner in ast.walk(stmt)
        )
        is_const_true = isinstance(node.test, ast.Constant) and bool(node.test.value)
        if is_const_true and not has_break:
            yield ctx.diag(
                "PG004",
                Severity.ERROR,
                f"interface function {ctx.name!r} contains 'while True' with "
                f"no break: it cannot terminate",
                node=node,
                hint="bound the loop by a workload feature",
            )
            continue
        if has_break or is_const_true:
            continue
        cond_names = {
            n.id for n in ast.walk(node.test) if isinstance(n, ast.Name)
        }
        assigned: set[str] = set()
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Name) and isinstance(
                    inner.ctx, ast.Store
                ):
                    assigned.add(inner.id)
        if cond_names and not (cond_names & assigned):
            yield ctx.diag(
                "PG004",
                Severity.WARNING,
                f"while-loop condition in {ctx.name!r} reads "
                f"{sorted(cond_names)}, none of which the loop body assigns: "
                f"termination is not statically visible",
                node=node,
                hint="update the condition variable in the body, or add a "
                "bounded counter",
            )


@rule("PG005", "program", "Function reads a workload feature that does not exist")
def check_workload_features(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None or ctx.param is None:
        return
    features = ctx.features()
    if features is None:
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == ctx.param
            and not node.attr.startswith("_")
            and node.attr not in features
        ):
            yield ctx.diag(
                "PG005",
                Severity.ERROR,
                f"interface function {ctx.name!r} reads "
                f"{ctx.param}.{node.attr}, but "
                f"{ctx.workload_type.__name__} has no such feature "
                f"(has: {sorted(features)})",
                node=node,
                hint="fix the feature name or extend the workload dataclass",
            )


@rule("PG006", "program", "Interface function never returns a value")
def check_returns_value(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return  # generators are judged elsewhere
        if (
            isinstance(node, ast.Return)
            and node.value is not None
            and not (isinstance(node.value, ast.Constant) and node.value.value is None)
        ):
            return
    yield ctx.diag(
        "PG006",
        Severity.ERROR,
        f"interface function {ctx.name!r} never returns a value: it cannot "
        f"predict anything",
        hint="return the predicted metric (cycles, items/cycle, ...)",
    )


@rule("PG007", "program", "Interface function recurses")
def check_recursion(ctx: ProgramLintContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == ctx.name
        ):
            yield ctx.diag(
                "PG007",
                Severity.INFO,
                f"interface function {ctx.name!r} calls itself: fine for "
                f"structural recursion over the workload item, but "
                f"termination rests on the item being finite",
                node=node,
                hint="ensure the recursion follows a shrinking structure",
            )
            return


def lint_program_fn(
    fn: Callable[..., Any],
    *,
    role: str = "latency",
    workload_type: type | None = None,
    accelerator: str | None = None,
    registry=None,
) -> list[Diagnostic]:
    """Run every program-family rule over one interface function."""
    from .registry import DEFAULT_REGISTRY

    ctx = ProgramLintContext(
        fn=fn,
        role=role,
        workload_type=workload_type,
        accelerator=accelerator,
    )
    return (registry or DEFAULT_REGISTRY).run_family("program", ctx)
