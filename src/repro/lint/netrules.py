"""Net-family lint passes: static audits of a Petri-net interface.

These are the checks a consumer's toolchain runs on a vendor-shipped
``.pnet`` before trusting it — the performance-IR analogue of
type-checking a header on ingestion.  Structural rules (siphons,
starvation, capacity) work on any :class:`~repro.petri.net.PetriNet`;
expression rules additionally use the delay/guard source text the DSL
parser retains, so their diagnostics point at real lines of the
shipped document.

Rule ids are ``PL0xx`` (Performance-interface Lint / net family); the
catalog with minimal failing examples lives in ``docs/perf-lint.md``.
"""

from __future__ import annotations

import ast
import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from repro.petri.analysis import (
    covers_all_positive,
    incidence_matrix,
    maximal_siphon,
    p_invariants,
    t_invariants,
)
from repro.petri.net import PetriNet, Transition

from .diagnostics import Diagnostic, Severity, SourceLocation
from .registry import rule


@dataclass
class NetLintContext:
    """Everything a net-family rule may look at.

    Args:
        net: The parsed or programmatically built net.
        filename: Where the net came from (for diagnostics).
        extra_injections: Injection declarations merged over the net's
            own (used by CLIs and by bundles whose nets are built in
            Python and thus carry no ``inject`` clauses).
    """

    net: PetriNet
    filename: str | None = None
    extra_injections: Mapping[str, frozenset[str] | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.injections: dict[str, frozenset[str] | None] = dict(
            getattr(self.net, "injections", {})
        )
        self.injections.update(self.extra_injections)
        #: Places with no ordinary or fault arc producing into them.
        self.source_places = sorted(
            set(self.net.places) - self._produced_places()
        )
        #: When a net declares no injection point at all, assume every
        #: source place is one (legacy documents); PL017 reports this.
        self.implicit_injections: list[str] = []
        if not self.injections:
            self.implicit_injections = list(self.source_places)
            self.injections = {p: None for p in self.implicit_injections}

    def _produced_places(self) -> set[str]:
        produced: set[str] = set()
        for t in self.net.transitions.values():
            produced.update(a.place for a in t.outputs)
            if t.timeout is not None:
                produced.add(t.timeout[1])
        return produced

    # ------------------------------------------------------------------
    # Diagnostic helpers
    # ------------------------------------------------------------------
    def loc(self, kind: str, name: str) -> SourceLocation:
        span = getattr(self.net, "source_map", {}).get((kind, name))
        if span is None:
            return SourceLocation(file=self.filename)
        return SourceLocation(file=self.filename, line=span[0], col=span[1])

    def diag(
        self,
        rule_id: str,
        severity: Severity,
        message: str,
        *,
        kind: str = "transition",
        name: str = "",
        hint: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=rule_id,
            severity=severity,
            message=message,
            location=self.loc(kind, name),
            subject=name or None,
            hint=hint,
        )

    # ------------------------------------------------------------------
    # Structure helpers shared by rules
    # ------------------------------------------------------------------
    def producers_of(self, place: str) -> list[Transition]:
        out = []
        for t in self.net.transitions.values():
            if any(a.place == place for a in t.outputs) or (
                t.timeout is not None and t.timeout[1] == place
            ):
                out.append(t)
        return out

    def consumers_of(self, place: str) -> list[Transition]:
        return [
            t
            for t in self.net.transitions.values()
            if any(a.place == place for a in t.inputs)
        ]


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------
def expr_ast(src: str | None) -> ast.expr | None:
    """AST of a stored ``delay``/``guard`` source, or None for
    constants, ``fn:`` references, and unparseable text."""
    if not src or not src.startswith("expr:"):
        return None
    try:
        return ast.parse(src[len("expr:"):].strip(), mode="eval").body
    except SyntaxError:  # the parser already rejected it; be safe
        return None


def tok_fields(tree: ast.expr) -> set[str]:
    """Token payload keys the expression reads via ``tok["key"]``."""
    fields: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "tok"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            fields.add(node.slice.value)
    return fields


def depends_on_token(tree: ast.expr) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id in ("tok", "toks") for n in ast.walk(tree)
    )


def fold_constant(tree: ast.expr) -> float | None:
    """Evaluate a token-independent expression; None when it depends on
    the token or fails to evaluate."""
    if depends_on_token(tree):
        return None
    from repro.petri.dsl import _SAFE_GLOBALS

    try:
        value = eval(  # noqa: S307 - same restricted scope as the DSL
            compile(ast.Expression(body=tree), "<lint>", "eval"), dict(_SAFE_GLOBALS)
        )
        return float(value)
    except Exception:
        return None


def _transition_exprs(t: Transition) -> Iterator[tuple[str, ast.expr]]:
    for kind, src in (
        ("delay", getattr(t, "delay_src", None)),
        ("guard", getattr(t, "guard_src", None)),
    ):
        tree = expr_ast(src)
        if tree is not None:
            yield kind, tree


# ----------------------------------------------------------------------
# Structural rules
# ----------------------------------------------------------------------
@rule("PL001", "net", "Empty siphon: a cyclically starved place set deadlocks the net")
def check_empty_siphon(ctx: NetLintContext) -> Iterator[Diagnostic]:
    siphon = maximal_siphon(ctx.net, excluded=ctx.injections)
    # Places with no producer at all are PL002's subject; this rule
    # reports the genuinely cyclic case, where every producer exists
    # but sits behind the very places it is supposed to fill.
    cyclic = sorted(p for p in siphon if ctx.producers_of(p))
    if not cyclic:
        return
    dead = sorted(
        t.name
        for t in ctx.net.transitions.values()
        if any(a.place in siphon for a in t.inputs)
    )
    if not dead:
        return
    yield ctx.diag(
        "PL001",
        Severity.ERROR,
        f"places {cyclic} form an empty siphon: they start empty and no "
        f"firing can ever fill them, deadlocking transitions {dead}",
        kind="place",
        name=cyclic[0],
        hint="declare an injection point inside the cycle (inject PLACE) "
        "or seed it from outside the cycle",
    )


@rule("PL002", "net", "Dead transition: an input place is never produced or injected")
def check_starved_inputs(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        for arc in t.inputs:
            if arc.place in ctx.injections:
                continue
            if ctx.producers_of(arc.place):
                continue
            yield ctx.diag(
                "PL002",
                Severity.ERROR,
                f"transition {t.name!r} consumes from {arc.place!r}, which no "
                f"transition produces and no injection feeds: it can never fire",
                name=t.name,
                hint=f"add a producer for {arc.place!r} or declare "
                f"'inject {arc.place}'",
            )


@rule("PL003", "net", "Arc weight exceeds place capacity: transition can never fire")
def check_arc_capacity(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        for direction, arcs in (("consumes", t.inputs), ("outputs", t.outputs)):
            for arc in arcs:
                cap = ctx.net.places[arc.place].capacity
                if cap is not None and arc.weight > cap:
                    yield ctx.diag(
                        "PL003",
                        Severity.ERROR,
                        f"transition {t.name!r} {direction} {arc.weight} tokens "
                        f"at {arc.place!r}, whose capacity is only {cap}: "
                        f"it can never fire",
                        name=t.name,
                        hint=f"raise the capacity of {arc.place!r} or lower "
                        f"the arc weight",
                    )


@rule("PL004", "net", "Disconnected place: no arc touches it")
def check_disconnected(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for name in ctx.net.places:
        if ctx.producers_of(name) or ctx.consumers_of(name):
            continue
        if name in ctx.injections:
            continue
        yield ctx.diag(
            "PL004",
            Severity.WARNING,
            f"place {name!r} is disconnected: no transition reads or writes it",
            kind="place",
            name=name,
            hint="remove it, or wire it into the net",
        )


@rule("PL005", "net", "Sink place: tokens accumulate (fine for observation sinks)")
def check_sinks(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for name in ctx.net.places:
        if ctx.consumers_of(name) or not ctx.producers_of(name):
            continue
        yield ctx.diag(
            "PL005",
            Severity.INFO,
            f"place {name!r} is a sink: produced but never consumed",
            kind="place",
            name=name,
            hint="expected for the observation sink; otherwise tokens leak here",
        )


@rule("PL009", "net", "Unbounded internal place: no backpressure modeled")
def check_unbounded_internal(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for name, place in ctx.net.places.items():
        if place.capacity is not None:
            continue
        if not ctx.producers_of(name) or not ctx.consumers_of(name):
            continue  # sources and sinks are legitimately unbounded
        yield ctx.diag(
            "PL009",
            Severity.INFO,
            f"internal place {name!r} is unbounded: the stage it feeds can "
            f"never exert backpressure upstream",
            kind="place",
            name=name,
            hint="give it a capacity matching the hardware FIFO depth, or "
            "leave unbounded if the queue really is elastic",
        )


@rule("PL010", "net", "Cycles exist but no firing sequence can repeat")
def check_repeatable_firing(ctx: NetLintContext) -> Iterator[Diagnostic]:
    if not _has_cycle(ctx.net):
        return
    c, _, _ = incidence_matrix(ctx.net)
    if c.size and t_invariants(c).shape[0] == 0:
        yield ctx.diag(
            "PL010",
            Severity.INFO,
            "the net contains cycles, but its incidence matrix has no "
            "T-invariant: no firing sequence returns the net to a previous "
            "marking, so every cycle turn consumes external tokens",
            kind="place",
            name=next(iter(ctx.net.places), ""),
            hint="expected for credit/mutex rings fed per item; a ring meant "
            "to spin freely is missing a return arc",
        )


@rule("PL012", "net", "Not conservative: no positive P-invariant covers all places")
def check_conservation(ctx: NetLintContext) -> Iterator[Diagnostic]:
    c, _, _ = incidence_matrix(ctx.net)
    if not c.size:
        return
    if covers_all_positive(p_invariants(c)):
        return
    yield ctx.diag(
        "PL012",
        Severity.INFO,
        "no positive place invariant covers every place: the net can create "
        "or destroy data units internally",
        kind="place",
        name=next(iter(ctx.net.places), ""),
        hint="forks/joins with asymmetric weights do this legitimately; "
        "check that token creation matches the hardware's behavior",
    )


@rule("PL013", "net", "Duplicate arc: the same place listed twice on one side")
def check_duplicate_arcs(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        for side, arcs in (("consume", t.inputs), ("produce", t.outputs)):
            seen: set[str] = set()
            for arc in arcs:
                if arc.place in seen:
                    yield ctx.diag(
                        "PL013",
                        Severity.WARNING,
                        f"transition {t.name!r} lists {arc.place!r} more than "
                        f"once in its {side} clause",
                        name=t.name,
                        hint=f"use an explicit weight ({arc.place}:2) instead "
                        f"of repeating the place",
                    )
                seen.add(arc.place)


@rule("PL017", "net", "Implicit injection point: workload contract undeclared")
def check_implicit_injection(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for place in ctx.implicit_injections:
        yield ctx.diag(
            "PL017",
            Severity.INFO,
            f"place {place!r} is assumed to be an injection point (the net "
            f"declares none)",
            kind="place",
            name=place,
            hint=f"declare 'inject {place} [fields ...]' to make the workload "
            f"contract explicit and enable token-field dataflow checks",
        )


def _has_cycle(net: PetriNet) -> bool:
    """Back-edge DFS over the bipartite graph — existence only, O(V+E)."""
    graph: dict[str, list[str]] = {}
    for t in net.transitions.values():
        tnode = f"t:{t.name}"
        graph.setdefault(tnode, [])
        for arc in t.inputs:
            graph.setdefault(f"p:{arc.place}", []).append(tnode)
        for arc in t.outputs:
            graph[tnode].append(f"p:{arc.place}")
            graph.setdefault(f"p:{arc.place}", [])
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    for root in graph:
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, Iterator[str]]] = [(root, iter(graph[root]))]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    return True
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(graph[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


# ----------------------------------------------------------------------
# Token-field dataflow
# ----------------------------------------------------------------------
OPAQUE = None  # payload shape unknown: anything may be present


def available_fields(ctx: NetLintContext) -> dict[str, frozenset[str] | None]:
    """Fixpoint of possibly-present payload fields per place.

    Seeds are the declared injections; default production forwards the
    first consumed token's payload, so a transition's output fields are
    the union over its input places (any of them may be first).  An
    opaque injection (``inject p`` with no field list) makes everything
    downstream opaque — the dataflow rule then stays silent there.
    """
    avail: dict[str, frozenset[str] | None] = {
        p: frozenset() for p in ctx.net.places
    }
    for place, decl in ctx.injections.items():
        avail[place] = OPAQUE if decl is None else frozenset(decl)

    changed = True
    while changed:
        changed = False
        for t in ctx.net.transitions.values():
            incoming: frozenset[str] | None = frozenset()
            for arc in t.inputs:
                got = avail[arc.place]
                if got is OPAQUE:
                    incoming = OPAQUE
                    break
                incoming = incoming | got
            targets = [a.place for a in t.outputs]
            if t.timeout is not None:
                targets.append(t.timeout[1])
            for out in targets:
                cur = avail[out]
                if cur is OPAQUE:
                    continue
                if incoming is OPAQUE:
                    avail[out] = OPAQUE
                    changed = True
                elif not incoming <= cur:
                    avail[out] = cur | incoming
                    changed = True
    return avail


@rule("PL006", "net", "Expression reads a token field no upstream source defines")
def check_token_dataflow(ctx: NetLintContext) -> Iterator[Diagnostic]:
    avail = available_fields(ctx)
    for t in ctx.net.transitions.values():
        possible: frozenset[str] | None = frozenset()
        for arc in t.inputs:
            got = avail[arc.place]
            if got is OPAQUE:
                possible = OPAQUE
                break
            possible = possible | got
        if possible is OPAQUE or not possible:
            continue  # opaque payloads, or starved (PL001/PL002 report that)
        for kind, tree in _transition_exprs(t):
            for fname in sorted(tok_fields(tree) - possible):
                yield ctx.diag(
                    "PL006",
                    Severity.ERROR,
                    f"{kind} of transition {t.name!r} reads tok[{fname!r}], "
                    f"but no upstream injection or production defines it "
                    f"(available: {sorted(possible)})",
                    kind=kind,
                    name=t.name,
                    hint=f"add {fname!r} to the inject declaration feeding "
                    f"this path, or fix the field name",
                )


# ----------------------------------------------------------------------
# Delay/guard expression rules
# ----------------------------------------------------------------------
@rule("PL007", "net", "Delay is negative or non-finite")
def check_negative_delay(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        value: float | None = None
        if not callable(t.delay):
            value = float(t.delay)
        else:
            tree = expr_ast(getattr(t, "delay_src", None))
            if tree is not None:
                value = fold_constant(tree)
        if value is None:
            continue
        if value < 0 or math.isnan(value) or math.isinf(value):
            yield ctx.diag(
                "PL007",
                Severity.ERROR,
                f"transition {t.name!r} has delay {value}, which is not a "
                f"finite non-negative cycle count",
                kind="delay",
                name=t.name,
                hint="delays are service times; clamp with max(0, ...) if an "
                "expression can undershoot",
            )


@rule("PL008", "net", "Delay expression can go negative or divide by a field")
def check_suspicious_delay(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        tree = expr_ast(getattr(t, "delay_src", None))
        if tree is None or not depends_on_token(tree):
            continue
        for problem in _suspicious_ops(tree):
            yield ctx.diag(
                "PL008",
                Severity.WARNING,
                f"delay of transition {t.name!r} {problem}",
                kind="delay",
                name=t.name,
                hint="wrap subtractions in max(0, ...) and guard divisors "
                "against zero-valued fields",
            )


def _suspicious_ops(tree: ast.expr) -> list[str]:
    problems: list[str] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.Call):
            inner = guarded or (
                isinstance(node.func, ast.Name) and node.func.id in ("max", "abs")
            )
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Sub) and not guarded and (
                depends_on_token(node.left) or depends_on_token(node.right)
            ):
                problems.append(
                    "subtracts a workload-dependent term without a max(0, ...) "
                    "clamp: it can evaluate negative"
                )
            if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)) and (
                depends_on_token(node.right)
            ):
                problems.append(
                    "divides by a workload-dependent term: a zero-valued "
                    "field makes the delay undefined"
                )
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and not guarded
            and depends_on_token(node.operand)
        ):
            problems.append(
                "negates a workload-dependent term without a clamp: it "
                "can evaluate negative"
            )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(tree, False)
    return problems


@rule("PL011", "net", "Guard is statically constant")
def check_constant_guard(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        tree = expr_ast(getattr(t, "guard_src", None))
        if tree is None or depends_on_token(tree):
            continue
        value = fold_constant(tree)
        if value is None:
            continue
        if not value:
            yield ctx.diag(
                "PL011",
                Severity.ERROR,
                f"guard of transition {t.name!r} is constantly false: the "
                f"transition can never fire",
                kind="guard",
                name=t.name,
                hint="delete the transition or fix the guard",
            )
        else:
            yield ctx.diag(
                "PL011",
                Severity.WARNING,
                f"guard of transition {t.name!r} is constantly true: it "
                f"never filters anything",
                kind="guard",
                name=t.name,
                hint="drop the guard",
            )


# ----------------------------------------------------------------------
# Fault-arc rules (ROADMAP: fault-aware transitions)
# ----------------------------------------------------------------------
@rule("PL014", "net", "Timeout place is never drained")
def check_timeout_drained(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        if t.timeout is None:
            continue
        place = t.timeout[1]
        if ctx.consumers_of(place):
            continue
        yield ctx.diag(
            "PL014",
            Severity.WARNING,
            f"timeout place {place!r} of transition {t.name!r} has no "
            f"consumer: fault tokens accumulate there",
            kind="timeout",
            name=t.name,
            hint="fine if the simulation harness treats it as a sink; "
            "otherwise add a recovery transition draining it",
        )


@rule("PL015", "net", "Fault arc can never trigger")
def check_dead_fault_arc(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        if t.timeout is None:
            continue
        after = t.timeout[0]
        value: float | None = None
        if not callable(t.delay):
            value = float(t.delay)
        else:
            tree = expr_ast(getattr(t, "delay_src", None))
            if tree is not None:
                value = fold_constant(tree)
        if value is not None and value <= after:
            yield ctx.diag(
                "PL015",
                Severity.WARNING,
                f"transition {t.name!r} has constant delay {value} <= timeout "
                f"{after}: the fault arc can never trigger",
                kind="timeout",
                name=t.name,
                hint="lower the timeout below the worst-case delay, or drop "
                "the fault arc",
            )


@rule("PL016", "net", "Timeout place is capacity-bounded")
def check_timeout_capacity(ctx: NetLintContext) -> Iterator[Diagnostic]:
    for t in ctx.net.transitions.values():
        if t.timeout is None:
            continue
        place = t.timeout[1]
        if ctx.net.places[place].capacity is None:
            continue
        yield ctx.diag(
            "PL016",
            Severity.WARNING,
            f"timeout place {place!r} of transition {t.name!r} is bounded: a "
            f"fault burst overflowing it aborts the simulation instead of "
            f"degrading gracefully",
            kind="timeout",
            name=t.name,
            hint="leave fault queues unbounded; the runtime drains them",
        )


