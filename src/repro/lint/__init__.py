"""perf-lint: static analysis for performance interfaces.

The paper's bet is that performance interfaces become artifacts that
consumers *ingest and trust* — simulate against, provision from.  This
package is the toolchain that makes the trust earned: a rule-based
static analyzer over all three interface representations.

* **net rules** (``PL0xx``, :mod:`repro.lint.netrules`) audit a parsed
  Petri net: empty siphons and starved transitions, capacity
  violations, token-field dataflow against declared injection points,
  negative/suspicious delay expressions, fault-arc well-formedness.
* **program rules** (``PG0xx``, :mod:`repro.lint.programrules`) audit
  executable interface functions via :mod:`ast`: purity, determinism,
  termination, workload-feature existence.
* **cross rules** (``XR0xx``, :mod:`repro.lint.crossrules`) reconcile
  the representations of one accelerator against each other.

Entry points: ``python -m repro.tools.pnet lint file.pnet`` for one
document, ``python -m repro.tools.perflint`` to sweep every shipped
accelerator bundle (that is what CI gates on).  The rule catalog with
minimal failing examples is ``docs/perf-lint.md``.
"""

from .bundle import (
    InterfaceBundle,
    lint_bundle,
    lint_net,
    lint_pnet_text,
    lint_program_fn,
)
from .crossrules import BundleLintContext
from .diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from .netrules import NetLintContext
from .programrules import ProgramLintContext
from .registry import DEFAULT_REGISTRY, Rule, RuleRegistry

__all__ = [
    "BundleLintContext",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "InterfaceBundle",
    "LintReport",
    "NetLintContext",
    "ProgramLintContext",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SourceLocation",
    "lint_bundle",
    "lint_net",
    "lint_pnet_text",
    "lint_program_fn",
]
