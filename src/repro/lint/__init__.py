"""perf-lint: static analysis for performance interfaces.

The paper's bet is that performance interfaces become artifacts that
consumers *ingest and trust* — simulate against, provision from.  This
package is the toolchain that makes the trust earned: a rule-based
static analyzer over all three interface representations.

* **net rules** (``PL0xx``, :mod:`repro.lint.netrules`) audit a parsed
  Petri net: empty siphons and starved transitions, capacity
  violations, token-field dataflow against declared injection points,
  negative/suspicious delay expressions, fault-arc well-formedness.
* **program rules** (``PG0xx``, :mod:`repro.lint.programrules`) audit
  executable interface functions via :mod:`ast`: purity, determinism,
  termination, workload-feature existence.
* **cross rules** (``XR0xx``, :mod:`repro.lint.crossrules`) reconcile
  the representations of one accelerator against each other.
* **verify rules** (``VR0xx``, :mod:`repro.lint.verify`) *prove*
  contracts instead of sampling them: symbolic latency bounds by
  abstract interpretation over the compiled net, monotonicity
  certificates by derivative-sign analysis, corner-point checks
  against the compiled engine.  Run by ``pnet verify``, not by
  ``lint_bundle`` — verification is a promotion gate, not a style pass.

Entry points: ``python -m repro.tools.pnet lint file.pnet`` for one
document, ``python -m repro.tools.pnet verify`` for the contract gate,
``python -m repro.tools.perflint`` to sweep every shipped
accelerator bundle (that is what CI gates on).  The rule catalog with
minimal failing examples is ``docs/perf-lint.md``.
"""

from .bundle import (
    InterfaceBundle,
    lint_bundle,
    lint_net,
    lint_pnet_text,
    lint_program_fn,
)
from .crossrules import BundleLintContext
from .diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from .netrules import NetLintContext
from .programrules import ProgramLintContext
from .registry import DEFAULT_REGISTRY, Rule, RuleRegistry
from .verify import (
    MonotoneCert,
    PerfContract,
    Verification,
    analyze_bundle,
    load_contract,
    save_contract,
    sidecar_path,
    verify_bundle,
    verify_candidate,
)
from .witness import Witness, worst_discordant_pair

__all__ = [
    "BundleLintContext",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "InterfaceBundle",
    "LintReport",
    "MonotoneCert",
    "NetLintContext",
    "PerfContract",
    "ProgramLintContext",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SourceLocation",
    "Verification",
    "Witness",
    "analyze_bundle",
    "lint_bundle",
    "lint_net",
    "lint_pnet_text",
    "lint_program_fn",
    "load_contract",
    "save_contract",
    "sidecar_path",
    "verify_bundle",
    "verify_candidate",
    "worst_discordant_pair",
]
