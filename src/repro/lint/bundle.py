"""Bundles: how an accelerator package hands its interfaces to the linter.

An :class:`InterfaceBundle` collects everything one accelerator ships —
the English statements, the executable program functions, the ``.pnet``
text (or a factory for programmatically built nets), the declared
injection points, and a few representative workload samples for the
cross-representation checks.  Accelerator packages expose a
``perflint_bundle()`` returning one of these; ``repro.tools.perflint``
discovers and audits them all.

Vendors extend the linter by attaching :class:`~repro.lint.registry.Rule`
objects to ``extra_rules`` — they run through the same registry,
reporting, and CI gating as the built-ins.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.nl import EnglishInterface
from repro.core.program import ProgramInterface
from repro.petri.dsl import parse
from repro.petri.net import PetriNet

from .crossrules import BundleLintContext
from .diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from .netrules import NetLintContext
from .programrules import ProgramLintContext
from .registry import DEFAULT_REGISTRY, Rule, RuleRegistry


@dataclass
class InterfaceBundle:
    """One accelerator's performance interfaces, ready for audit.

    Attributes:
        accelerator: Canonical accelerator name.
        english: The NL representation, if shipped.
        program: The program representation, if shipped.
        program_fns: The raw interface functions by role
            (``{"latency": fn, "throughput": fn}``) — linted individually
            so diagnostics point into their source.
        workload_type: Dataclass the program functions take; powers the
            unknown-feature check (PG005).
        pnet_text: The ``.pnet`` document, when the net ships as text.
        pnet_env: Extra names the document's expressions may reference.
        pnet_file: Path the text came from, for diagnostics.
        net_factory: Builder for programmatically constructed nets
            (used instead of ``pnet_text``).
        injected: Injection declarations for nets that cannot carry
            ``inject`` clauses (programmatic ones); merged over the
            net's own declarations.
        samples: Representative workload items for cross checks.
        petri_latency_fn: Optional per-item latency according to the
            net (usually a tiny simulation), enabling XR005.
        extra_rules: Vendor rules to run alongside the built-ins.
        entry: Place a request token enters the net at (verifier).
        sink: Place whose arrival completes a request (verifier).
        feature_domains: Per-token-field ``(lo, hi)`` value ranges the
            contract is stated over; the verifier concretizes symbolic
            bounds at this box's corners.
        declared_monotone: Features the vendor *declares* monotone
            (``{"size": +1}`` = non-decreasing) — what ``pnet verify``
            must prove or refute (VR004).
        contract: Optional declared :class:`~repro.lint.verify.PerfContract`
            the derived bounds must stay inside (VR003).
    """

    accelerator: str
    english: EnglishInterface | None = None
    program: ProgramInterface | None = None
    program_fns: Mapping[str, Callable[..., Any]] = field(default_factory=dict)
    workload_type: type | None = None
    pnet_text: str | None = None
    pnet_env: Mapping[str, Any] | None = None
    pnet_file: str | None = None
    net_factory: Callable[[], PetriNet] | None = None
    injected: Mapping[str, frozenset[str] | None] = field(default_factory=dict)
    samples: Sequence[Any] = ()
    petri_latency_fn: Callable[[Any], float] | None = None
    extra_rules: Sequence[Rule] = ()
    entry: str = "in"
    sink: str = "out"
    feature_domains: Mapping[str, tuple[float, float]] = field(default_factory=dict)
    declared_monotone: Mapping[str, int] = field(default_factory=dict)
    contract: Any | None = None

    def build_net(self) -> tuple[PetriNet | None, str | None]:
        """Materialize the net plus the filename diagnostics should cite."""
        if self.net_factory is not None:
            return self.net_factory(), self.pnet_file or f"<{self.accelerator}>"
        if self.pnet_text is not None:
            net = parse(self.pnet_text, env=dict(self.pnet_env or {}))
            return net, self.pnet_file or f"<{self.accelerator}.pnet>"
        return None, None


def _registry_for(
    bundle: InterfaceBundle | None, registry: RuleRegistry | None
) -> RuleRegistry:
    base = registry or DEFAULT_REGISTRY
    if bundle is not None and bundle.extra_rules:
        base = base.copy()
        for extra in bundle.extra_rules:
            base.register(extra)
    return base


def lint_pnet_text(
    text: str,
    *,
    env: Mapping[str, Any] | None = None,
    filename: str | None = None,
    extra_injections: Mapping[str, frozenset[str] | None] | None = None,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Lint a ``.pnet`` document.  Parse errors become a diagnostic
    (rule ``PL000``) rather than an exception, so CLIs report uniformly."""
    from repro.petri.errors import DslError

    report = LintReport()
    try:
        net = parse(text, env=dict(env or {}))
    except DslError as exc:
        report.extend(
            [
                Diagnostic(
                    rule_id="PL000",
                    severity=Severity.ERROR,
                    message=f"document does not parse: {exc}",
                    location=SourceLocation(file=filename, line=exc.line),
                )
            ]
        )
        return report
    return lint_net(
        net,
        filename=filename,
        extra_injections=extra_injections,
        registry=registry,
    )


def lint_net(
    net: PetriNet,
    *,
    filename: str | None = None,
    extra_injections: Mapping[str, frozenset[str] | None] | None = None,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Lint an already-built net with the net-family rules."""
    reg = registry or DEFAULT_REGISTRY
    ctx = NetLintContext(
        net=net,
        filename=filename,
        extra_injections=dict(extra_injections or {}),
    )
    report = LintReport()
    report.extend(reg.run_family("net", ctx))
    return report


def lint_program_fn(
    fn: Callable[..., Any],
    *,
    role: str = "latency",
    workload_type: type | None = None,
    accelerator: str | None = None,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Lint one interface function with the program-family rules."""
    reg = registry or DEFAULT_REGISTRY
    ctx = ProgramLintContext(
        fn=fn,
        role=role,
        workload_type=workload_type,
        accelerator=accelerator,
    )
    report = LintReport()
    report.extend(reg.run_family("program", ctx))
    return report


def lint_bundle(
    bundle: InterfaceBundle,
    *,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Audit one accelerator's full bundle: net, programs, and cross checks."""
    reg = _registry_for(bundle, registry)
    report = LintReport()

    from repro.petri.errors import DslError

    net: PetriNet | None = None
    net_file: str | None = None
    try:
        net, net_file = bundle.build_net()
    except DslError as exc:
        report.extend(
            [
                Diagnostic(
                    rule_id="PL000",
                    severity=Severity.ERROR,
                    message=f"document does not parse: {exc}",
                    location=SourceLocation(
                        file=bundle.pnet_file or f"<{bundle.accelerator}.pnet>",
                        line=exc.line,
                    ),
                )
            ]
        )
    if net is not None:
        report.extend(
            lint_net(
                net,
                filename=net_file,
                extra_injections=bundle.injected,
                registry=reg,
            )
        )

    for role, fn in bundle.program_fns.items():
        report.extend(
            lint_program_fn(
                fn,
                role=role,
                workload_type=bundle.workload_type,
                accelerator=bundle.accelerator,
                registry=reg,
            )
        )

    ctx = BundleLintContext(bundle=bundle, net=net, net_filename=net_file)
    report.extend(reg.run_family("cross", ctx))
    return report
