"""Monotonicity and Lipschitz certificates for interface programs.

The cross-family lint pass (XR004) *samples* an English monotonicity
claim against the program interface: a concordance score over the
bundle's workload samples.  A score proves nothing about the points
not sampled.  This module replaces sampling with an AST-level
**derivative-sign analysis**: the program function is abstractly
interpreted with each value carrying, per workload feature, an
interval enclosing its *difference quotient*

    (f(x + h) - f(x)) / h    for any step h >= 1

in that feature.  If the quotient interval sits at or above zero, the
program is provably non-decreasing in the feature — everywhere, not
just on samples — and the interval's upper endpoint is a Lipschitz
slope bound.  When the analysis cannot prove a direction it degrades
honestly: the certificate says ``unknown`` and a sampled
counterexample search supplies a :class:`~repro.lint.witness.Witness`
if one exists.

Unit steps (h >= 1) are the right granularity for workload features —
sizes, counts, beats are integers — and they are what makes rounding
tractable: ``floor``/``ceil``/``//`` jump by at most one per unit
step, so they widen a quotient by one instead of destroying it.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from math import inf

from ..programrules import ProgramLintContext
from ..witness import Witness, worst_discordant_pair
from .domain import NONNEG, TOP, Interval

DIRECTIONS = ("non-decreasing", "non-increasing", "constant", "unknown")
PROOFS = ("affine", "derivative", "sampled", "declared")


@dataclass(frozen=True)
class MonotoneCert:
    """One feature's monotonicity verdict for one interface.

    ``slope`` is the largest per-unit change the analysis can bound
    (``inf`` when the direction is proven but the slope is not, e.g.
    accumulation loops with feature-dependent trip counts); ``proof``
    records how the verdict was reached — ``affine`` (read off a
    symbolic bound's coefficients), ``derivative`` (this module's
    abstract interpretation), ``sampled`` (concordance over samples —
    evidence, not proof), or ``declared`` (taken on trust).
    """

    feature: str
    direction: str
    slope: float | None = None
    proof: str = "derivative"
    witness: Witness | None = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.proof not in PROOFS:
            raise ValueError(f"unknown proof kind {self.proof!r}")

    @property
    def proven(self) -> bool:
        return self.direction != "unknown" and self.proof in ("affine", "derivative")

    def agrees(self, sign: int) -> bool | None:
        """Does this certificate support a claimed direction?

        ``True``/``False`` when the certificate decides it, ``None``
        when it is unknown.  ``constant`` is compatible with either
        claim (a plateau does not refute "increases with").
        """
        if self.direction == "unknown":
            return None
        if self.direction == "constant":
            return True
        wants = "non-decreasing" if sign > 0 else "non-increasing"
        return self.direction == wants

    def to_json(self) -> dict:
        out: dict = {
            "feature": self.feature,
            "direction": self.direction,
            "proof": self.proof,
        }
        if self.slope is not None:
            out["slope"] = "inf" if self.slope == inf else self.slope
        if self.witness is not None:
            out["witness"] = self.witness.to_json()
        return out

    @classmethod
    def from_json(cls, data: Mapping) -> MonotoneCert:
        slope = data.get("slope")
        if slope == "inf":
            slope = inf
        witness = data.get("witness")
        return cls(
            feature=data["feature"],
            direction=data["direction"],
            slope=None if slope is None else float(slope),
            proof=data.get("proof", "declared"),
            witness=Witness.from_json(witness) if witness else None,
        )


def cert_for_deriv(feature: str, deriv: Interval, *, proof: str = "derivative") -> MonotoneCert:
    """Classify a difference-quotient interval into a certificate."""
    if deriv.lo >= 0.0 and deriv.hi <= 0.0:
        return MonotoneCert(feature, "constant", slope=0.0, proof=proof)
    if deriv.lo >= 0.0:
        return MonotoneCert(feature, "non-decreasing", slope=deriv.hi, proof=proof)
    if deriv.hi <= 0.0:
        return MonotoneCert(feature, "non-increasing", slope=-deriv.lo, proof=proof)
    return MonotoneCert(feature, "unknown", proof=proof)


# ----------------------------------------------------------------------
# The abstract value: an interval plus per-feature quotient intervals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Abs:
    """Interval value + difference-quotient interval per feature.

    A feature absent from ``deriv`` has quotient exactly zero (the
    value provably does not depend on it)."""

    value: Interval
    deriv: Mapping[str, Interval] = field(default_factory=dict)

    @classmethod
    def constant(cls, v: float) -> Abs:
        return cls(Interval.point(v))

    @classmethod
    def feature(cls, name: str, domain: Interval) -> Abs:
        return cls(domain, {name: Interval.point(1.0)})

    @classmethod
    def top(cls, features: frozenset[str] | set[str]) -> Abs:
        return cls(TOP, dict.fromkeys(features, TOP))

    def d(self, name: str) -> Interval:
        return self.deriv.get(name, Interval.point(0.0))

    def _zip(self, other: Abs, op) -> dict[str, Interval]:
        out: dict[str, Interval] = {}
        for name in set(self.deriv) | set(other.deriv):
            iv = op(self.d(name), other.d(name), name)
            if not (iv.is_point and iv.lo == 0.0):
                out[name] = iv
        return out

    def __add__(self, other: Abs) -> Abs:
        return Abs(
            self.value + other.value,
            self._zip(other, lambda a, b, _n: a + b),
        )

    def __neg__(self) -> Abs:
        return Abs(-self.value, {n: -d for n, d in self.deriv.items()})

    def __sub__(self, other: Abs) -> Abs:
        return self + (-other)

    def __mul__(self, other: Abs) -> Abs:
        # Difference quotient of a product over step h:
        #   a(x+h)b(x+h) - a(x)b(x) = [a(x+h)-a(x)]b(x+h) + a(x)[b(x+h)-b(x)]
        # so Dab  in  Da*B + A*Db with A, B the value enclosures.
        return Abs(
            self.value * other.value,
            self._zip(
                other,
                lambda da, db, _n: da * other.value + self.value * db,
            ),
        )

    def __truediv__(self, other: Abs) -> Abs:
        value = self.value / other.value
        denom = other.value * other.value
        return Abs(
            value,
            self._zip(
                other,
                lambda da, db, _n: (da * other.value - self.value * db) / denom,
            ),
        )

    def join(self, other: Abs) -> Abs:
        return Abs(
            self.value.join(other.value),
            self._zip(other, lambda a, b, _n: a.join(b)),
        )

    def rounded(self, kind: str) -> Abs:
        """Compose with ``floor``/``ceil``: value widens one unit; each
        quotient widens by the unit jump but keeps a proven sign
        (rounding is monotone, so a non-decreasing argument stays
        non-decreasing)."""
        value = self.value.floor() if kind == "floor" else self.value.ceil()

        def widen(d: Interval) -> Interval:
            lo = 0.0 if d.lo >= 0.0 else d.lo - 1.0
            hi = 0.0 if d.hi <= 0.0 else d.hi + 1.0
            return Interval(lo, hi)

        return Abs(value, {n: widen(d) for n, d in self.deriv.items()})

    def widen_deriv(self, features, slack: Interval) -> Abs:
        deriv = dict(self.deriv)
        for name in features:
            deriv[name] = self.d(name) + slack
        return Abs(self.value, deriv)


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------
@dataclass
class ProgramAnalysis:
    """Result of abstractly interpreting one interface function."""

    fn_name: str
    ok: bool
    result: Abs | None = None
    features: tuple[str, ...] = ()
    notes: list[str] = field(default_factory=list)

    def cert(self, feature: str) -> MonotoneCert:
        if not self.ok or self.result is None:
            return MonotoneCert(feature, "unknown", proof="derivative")
        deriv = self.result.d(feature)
        if ANY_FEATURE in self.result.deriv:
            deriv = TOP  # workload object escaped: no per-feature claim
        return cert_for_deriv(feature, deriv)

    def certs(self) -> tuple[MonotoneCert, ...]:
        return tuple(self.cert(f) for f in self.features)


#: Pseudo-feature recorded in a quotient map when a value may depend on
#: *any* feature — e.g. the whole workload object escaped into a call we
#: cannot model.  Its presence poisons every per-feature claim: a map
#: containing it certifies nothing, not even "constant".
ANY_FEATURE = "*"


def feature_name(node: ast.expr, param: str | None) -> str | None:
    """The workload feature a node reads, if it reads one.

    Three shapes count as features: an attribute read ``item.size``, a
    zero-argument method call ``item.encoded_size()`` (a *derived*
    feature — its value is treated as an independent non-negative
    quantity), and — when the parameter is the net-DSL token ``tok`` —
    a payload subscript ``tok["size"]``."""
    if param is None:
        return None
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
    ):
        return node.attr
    if (
        isinstance(node, ast.Call)
        and not node.args
        and not node.keywords
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == param
    ):
        return node.func.attr
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    return None


def expr_features(node: ast.expr, param: str | None) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(node):
        name = feature_name(sub, param)
        if name is not None:
            out.add(name)
    return out


class _Interpreter:
    def __init__(
        self,
        ctx,
        domains: Mapping[str, Interval],
        globals_: Mapping[str, object] | None = None,
    ) -> None:
        self.ctx = ctx
        self.domains = domains
        self.globals = globals_ or {}
        self.notes: list[str] = []
        self.features: set[str] = set()
        self.returned: Abs | None = None

    def note(self, msg: str) -> None:
        if msg not in self.notes:
            self.notes.append(msg)

    # -- expression features (for condition-dependence widening) -------
    def _expr_features(self, node: ast.expr) -> set[str]:
        return expr_features(node, self.ctx.param)

    def _havoc_from(self, node: ast.AST, env: Mapping[str, Abs]) -> Abs:
        """The sound "I give up" value for an expression: TOP value with
        TOP quotient for every feature the expression could transitively
        depend on — directly, through a local it reads, or (when the
        whole workload object escapes, e.g. ``helper(msg)``) through
        *any* feature, recorded as :data:`ANY_FEATURE`."""
        feats = (
            self._expr_features(node) if isinstance(node, ast.expr) else set()
        )
        consumed: set[int] = set()
        for sub in ast.walk(node):
            name = feature_name(sub, self.ctx.param)
            if name is not None:
                feats.add(name)
                if isinstance(sub, ast.Call):
                    consumed.add(id(sub.func.value))
                else:
                    consumed.add(id(sub.value))
            # Any context counts: an AugAssign target ("x -= y") is a
            # Store in the AST but reads x's old value all the same.
            if isinstance(sub, ast.Name) and sub.id in env:
                feats |= set(env[sub.id].deriv)
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id == self.ctx.param
                and id(sub) not in consumed
            ):
                feats.add(ANY_FEATURE)
                break
        return Abs.top(feats)

    # -- expressions ----------------------------------------------------
    def eval(self, node: ast.expr, env: dict[str, Abs]) -> Abs:
        feature = feature_name(node, self.ctx.param)
        if feature is not None:
            self.features.add(feature)
            return Abs.feature(feature, self.domains.get(feature, NONNEG))
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Abs(Interval(0.0, 1.0))
            if isinstance(node.value, (int, float)):
                return Abs.constant(float(node.value))
            return Abs(TOP)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            bound = self.globals.get(node.id)
            if isinstance(bound, (int, float)) and not isinstance(bound, bool):
                return Abs.constant(float(bound))
            self.note(f"unknown name {node.id!r} treated as unconstrained")
            return Abs(TOP)
        if isinstance(node, ast.UnaryOp):
            sub = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return -sub
            if isinstance(node.op, ast.UAdd):
                return sub
            return self._havoc_from(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.FloorDiv):
                return (left / right).rounded("floor")
            if isinstance(node.op, ast.Mod):
                divisor = right.value
                value = (
                    Interval(0.0, divisor.hi) if divisor.lo > 0 else TOP
                )
                deriv = dict.fromkeys(left.deriv, TOP)
                deriv.update(dict.fromkeys(right.deriv, TOP))
                if deriv:
                    self.note("'%' is non-monotone: quotient unknown for its operands")
                return Abs(value, deriv)
            return self._havoc_from(node, env)
        if isinstance(node, ast.IfExp):
            body = self.eval(node.body, env)
            orelse = self.eval(node.orelse, env)
            joined = body.join(orelse)
            cond_feats = self._expr_features(node.test)
            if cond_feats:
                # Crossing the branch boundary as a feature grows can
                # jump between the two branch values: widen the
                # quotient by the joined value spread.
                width = joined.value.width
                slack = (
                    TOP if width == inf else Interval(-width, width)
                )
                joined = joined.widen_deriv(cond_feats, slack)
                self.features.update(cond_feats)
            return joined
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            feats = self._expr_features(node)
            self.features.update(feats)
            return Abs(Interval(0.0, 1.0), dict.fromkeys(feats, TOP))
        havoc = self._havoc_from(node, env)
        if havoc.deriv:
            self.note(
                f"unsupported expression at line "
                f"{getattr(node, 'lineno', '?')} depends on features "
                f"{sorted(havoc.deriv)}"
            )
            self.features.update(self._expr_features(node))
        return havoc

    def _eval_call(self, node: ast.Call, env: dict[str, Abs]) -> Abs:
        args = [self.eval(a, env) for a in node.args]
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if node.keywords:
            name = None
        if name in ("min", "max") and len(args) >= 2:
            # max(a+da, b+db) lies within [max(a,b)+min(da,db),
            # max(a,b)+max(da,db)], so the quotient hull is sound.
            out = args[0]
            for other in args[1:]:
                value = (
                    out.value.min_(other.value)
                    if name == "min"
                    else out.value.max_(other.value)
                )
                out = Abs(value, out._zip(other, lambda a, b, _n: a.join(b)))
            return out
        if name == "abs" and len(args) == 1:
            (a,) = args
            if a.value.lo >= 0:
                return a
            if a.value.hi <= 0:
                return -a
            return Abs(a.value.abs_(), a._zip(-a, lambda x, y, _n: x.join(y)))
        if name in ("ceil", "floor") and len(args) == 1:
            return args[0].rounded(name)
        if name in ("float", "int", "round") and len(args) == 1:
            if name == "round":
                return args[0].rounded("floor").join(args[0].rounded("ceil"))
            return args[0]
        if name == self.ctx.name:
            # Self-recursion over the workload structure: assume the
            # callee returns a non-negative cost (checked inductively by
            # the caller's own result enclosure) with unknown quotient.
            havoc = self._havoc_from(node, env)
            self.features.update(self._expr_features(node))
            self.note(
                "structural recursion: inductive non-negative result assumed, "
                "quotient unknown for its arguments"
            )
            return Abs(NONNEG, dict(havoc.deriv))
        havoc = self._havoc_from(node, env)
        self.features.update(self._expr_features(node))
        if name or isinstance(node.func, ast.Attribute):
            label = name or "a method"
            self.note(f"call to {label}() not modeled: result unconstrained")
        return havoc

    # -- statements -----------------------------------------------------
    def _assigned_names(self, stmts: list[ast.stmt]) -> set[str]:
        out: set[str] = set()
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    out.add(sub.id)
        return out

    def exec_block(self, stmts: list[ast.stmt], env: dict[str, Abs]) -> bool:
        """Interpret statements; returns True if every path returned."""
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                value = (
                    Abs.constant(0.0)
                    if stmt.value is None
                    else self.eval(stmt.value, env)
                )
                self.returned = (
                    value if self.returned is None else self.returned.join(value)
                )
                return True
            if isinstance(stmt, ast.Assign):
                value = self.eval(stmt.value, env)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = value
                    else:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name) and isinstance(
                                sub.ctx, ast.Store
                            ):
                                env[sub.id] = self._havoc_from(stmt.value, env)
                continue
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None and isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = self.eval(stmt.value, env)
                continue
            if isinstance(stmt, ast.AugAssign):
                if not isinstance(stmt.target, ast.Name):
                    continue
                current = env.get(stmt.target.id, Abs(TOP))
                rhs = self.eval(stmt.value, env)
                if isinstance(stmt.op, ast.Add):
                    env[stmt.target.id] = current + rhs
                elif isinstance(stmt.op, ast.Sub):
                    env[stmt.target.id] = current - rhs
                elif isinstance(stmt.op, ast.Mult):
                    env[stmt.target.id] = current * rhs
                elif isinstance(stmt.op, ast.Div):
                    env[stmt.target.id] = current / rhs
                else:
                    env[stmt.target.id] = Abs.top(
                        set(current.deriv) | set(rhs.deriv)
                    )
                continue
            if isinstance(stmt, ast.If):
                then_env = dict(env)
                else_env = dict(env)
                then_ret = self.exec_block(stmt.body, then_env)
                else_ret = self.exec_block(stmt.orelse, else_env)
                if then_ret and else_ret:
                    return True
                cond_feats = self._expr_features(stmt.test)
                self.features.update(cond_feats)
                live = (
                    [else_env]
                    if then_ret
                    else [then_env]
                    if else_ret
                    else [then_env, else_env]
                )
                merged: dict[str, Abs] = {}
                for name in set().union(*(set(e) for e in live)):
                    vals = [e[name] for e in live if name in e]
                    if len(vals) < len(live):
                        vals.append(Abs(TOP))
                    out = vals[0]
                    for v in vals[1:]:
                        out = out.join(v)
                    if cond_feats and len(live) > 1:
                        width = out.value.width
                        slack = TOP if width == inf else Interval(-width, width)
                        out = out.widen_deriv(cond_feats, slack)
                    merged[name] = out
                env.clear()
                env.update(merged)
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                self._exec_loop(stmt, env)
                continue
            if isinstance(stmt, ast.Expr):
                continue  # docstrings / bare expressions
            if isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom)):
                continue
            self.note(
                f"unsupported statement {type(stmt).__name__} at line "
                f"{getattr(stmt, 'lineno', '?')}: assigned names havocked"
            )
            havoc = self._havoc_from(stmt, env)
            for name in self._assigned_names([stmt]):
                env[name] = havoc
        return False

    def _exec_loop(self, stmt: ast.For | ast.While, env: dict[str, Abs]) -> None:
        """Sound loop summary: havoc everything the body writes, except
        recognizable non-negative accumulations, which keep a proven
        non-decreasing direction (slope unbounded — the trip count may
        itself grow with a feature)."""
        assigned = self._assigned_names([stmt])
        # Anything the body writes could depend on any feature the body
        # (or a local it reads) depends on — an empty quotient map would
        # wrongly claim feature-independence.
        havoc = self._havoc_from(stmt, env)
        loop_env = dict(env)
        for name in assigned:
            loop_env[name] = havoc
        accumulators: dict[str, Abs] = {}
        body = stmt.body + getattr(stmt, "orelse", [])
        for inner in body:
            if (
                isinstance(inner, ast.AugAssign)
                and isinstance(inner.target, ast.Name)
                and isinstance(inner.op, ast.Add)
            ):
                name = inner.target.id
                init = env.get(name)
                rhs = self.eval(inner.value, loop_env)
                if (
                    init is not None
                    and init.value.lo >= 0
                    and rhs.value.lo >= 0
                    and all(d.lo >= 0 for d in rhs.deriv.values())
                ):
                    feats = set(rhs.deriv) | set(init.deriv)
                    accumulators[name] = Abs(
                        Interval(init.value.lo, inf),
                        dict.fromkeys(feats, Interval(0.0, inf)),
                    )
        havocked = False
        for name in assigned:
            if name in accumulators:
                env[name] = accumulators[name]
            else:
                env[name] = havoc
                havocked = True
        # A loop may also return from inside; account for it coarsely.
        for inner in ast.walk(stmt):
            if isinstance(inner, ast.Return):
                ret = Abs.top(self.features | self._expr_features(stmt))
                self.returned = (
                    ret if self.returned is None else self.returned.join(ret)
                )
                break
        if havocked:
            self.note(
                "loop summarized by havoc: only '+= non-negative' "
                "accumulators keep a direction"
            )


def analyze_program(
    fn: Callable,
    *,
    workload_type: type | None = None,
    domains: Mapping[str, tuple[float, float]] | None = None,
) -> ProgramAnalysis:
    """Abstractly interpret an interface function; the result's
    per-feature quotient intervals become monotonicity certificates."""
    ctx = ProgramLintContext(fn=fn, workload_type=workload_type)
    name = getattr(fn, "__name__", repr(fn))
    if ctx.tree is None or ctx.param is None:
        return ProgramAnalysis(fn_name=name, ok=False)
    iv_domains = {
        k: Interval(float(lo), float(hi)) for k, (lo, hi) in (domains or {}).items()
    }
    interp = _Interpreter(ctx, iv_domains, getattr(fn, "__globals__", None))
    env: dict[str, Abs] = {}
    # Parameters past the workload item: bind numeric defaults exactly,
    # havoc the rest (the caller may pass anything).
    args = ctx.tree.args
    defaults = dict(
        zip([a.arg for a in args.args[-len(args.defaults) :]], args.defaults)
        if args.defaults
        else []
    )
    for arg in args.args[1:]:
        default = defaults.get(arg.arg)
        if (
            isinstance(default, ast.Constant)
            and isinstance(default.value, (int, float))
            and not isinstance(default.value, bool)
        ):
            env[arg.arg] = Abs.constant(float(default.value))
        else:
            env[arg.arg] = Abs(TOP)
    try:
        interp.exec_block(ctx.tree.body, env)
    except (ValueError, RecursionError) as exc:
        interp.note(f"analysis aborted: {exc}")
        return ProgramAnalysis(fn_name=name, ok=False, notes=interp.notes)
    if interp.returned is None:
        interp.note("no return statement reached")
        return ProgramAnalysis(fn_name=name, ok=False, notes=interp.notes)
    known = ctx.features()
    feats = sorted(
        interp.features if known is None else interp.features & known
    )
    return ProgramAnalysis(
        fn_name=name,
        ok=True,
        result=interp.returned,
        features=tuple(feats),
        notes=interp.notes,
    )


class _ExprScope:
    """Shim context for interpreting a bare net-DSL delay expression,
    where the "parameter" is the token ``tok``."""

    param = "tok"
    name = "<delay>"


def analyze_delay_expr(
    tree: ast.expr,
    *,
    env: Mapping[str, object] | None = None,
    domains: Mapping[str, Interval] | None = None,
) -> tuple[Abs, list[str]]:
    """Quotient analysis of one ``delay expr:`` AST over its token
    payload fields.  Returns the abstract result plus analysis notes."""
    interp = _Interpreter(_ExprScope(), dict(domains or {}), env)
    result = interp.eval(tree, {})
    return result, interp.notes


def sampled_cert(
    feature: str,
    pairs: list[tuple[Mapping[str, float], float]],
    sign: int,
) -> MonotoneCert:
    """Fallback certificate from samples: never a proof — either an
    ``unknown`` with a concrete counterexample witness, or an
    ``unknown`` direction flagged as merely consistent."""
    witness = worst_discordant_pair(feature, pairs, sign)
    if witness is not None:
        return MonotoneCert(feature, "unknown", proof="sampled", witness=witness)
    direction = "non-decreasing" if sign > 0 else "non-increasing"
    return MonotoneCert(feature, direction, proof="sampled")
