"""The abstract domain the verifier computes in: intervals and affine forms.

Symbolic bound analysis wants answers like "latency is between
``5 + beats`` and ``153.7 + 46.9*groups + blob`` cycles" — an *affine
form* whose coefficients are intervals (a coefficient widens when the
expression rounds, branches, or folds a nonlinearity).  This module is
that arithmetic, with every transfer rule chosen to be *sound*: the
concrete value of the modeled expression always lies inside the
abstract result, so a bound the verifier prints is a bound the
hardware model cannot break.

Widening rules worth knowing (they are where precision goes):

* ``ceil(x)`` adds ``[0, 1]`` slack, ``floor(x)`` adds ``[-1, 0]``.
* ``x // c`` (c > 0 constant) is ``x/c`` with ``[-1, 0]`` slack,
  ``x % c`` collapses to the interval ``[0, c]``.
* ``a if test else b`` joins both branches (the test is not tracked).
* A product of two feature-dependent forms is intervalized over the
  declared feature domains — the result is still sound but no longer
  symbolic in those features.

An :class:`AffineForm` additionally carries ``exact``: ``True`` while
every applied operation was affine, i.e. the form *is* the expression,
not just an enclosure.  Contracts report this as the evaluability
class ("closed-form" vs "piecewise").
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from math import inf, isnan

__all__ = ["Interval", "AffineForm", "TOP", "NONNEG"]


def _mul(a: float, b: float) -> float:
    """IEEE-safe interval endpoint product: 0 * inf is 0 here (a zero
    coefficient annihilates even an unbounded feature)."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if isnan(self.lo) or isnan(self.hi):
            raise ValueError("interval endpoints cannot be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------
    @classmethod
    def point(cls, v: float) -> Interval:
        return cls(float(v), float(v))

    @classmethod
    def of(cls, value: Interval | float | int) -> Interval:
        return value if isinstance(value, Interval) else cls.point(float(value))

    # -- predicates -----------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return self.lo > -inf and self.hi < inf

    def contains(self, v: float, tol: float = 0.0) -> bool:
        return self.lo - tol <= v <= self.hi + tol

    @property
    def width(self) -> float:
        return self.hi - self.lo

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: Interval | float | int) -> Interval:
        o = Interval.of(other)
        return Interval(self.lo + o.lo, self.hi + o.hi)

    __radd__ = __add__

    def __neg__(self) -> Interval:
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: Interval | float | int) -> Interval:
        return self + (-Interval.of(other))

    def __mul__(self, other: Interval | float | int) -> Interval:
        o = Interval.of(other)
        products = [
            _mul(a, b) for a in (self.lo, self.hi) for b in (o.lo, o.hi)
        ]
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: Interval | float | int) -> Interval:
        o = Interval.of(other)
        if o.lo <= 0.0 <= o.hi:
            return TOP  # division by an interval straddling zero
        return self * Interval(1.0 / o.hi, 1.0 / o.lo)

    def join(self, other: Interval) -> Interval:
        """Convex hull: the smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def ceil(self) -> Interval:
        """Encloses ``ceil(x)`` for every x in self (x <= ceil(x) < x+1)."""
        return Interval(self.lo, self.hi + 1.0)

    def floor(self) -> Interval:
        return Interval(self.lo - 1.0, self.hi)

    def min_(self, other: Interval) -> Interval:
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: Interval) -> Interval:
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def abs_(self) -> Interval:
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


#: The whole extended real line — the "I know nothing" element.
TOP = Interval(-inf, inf)
#: The non-negative reals — default domain for workload features
#: (sizes, counts, beats can't be negative).
NONNEG = Interval(0.0, inf)


@dataclass(frozen=True)
class AffineForm:
    """``const + Σ coeff_f · f`` with interval constant and coefficients.

    Feature values are assumed **non-negative** (workload features are
    sizes and counts); :meth:`lower_at`/:meth:`upper_at` and the
    rendered bound expressions rely on it, and :meth:`interval` checks
    the declared domains honor it.
    """

    const: Interval = field(default_factory=lambda: Interval.point(0.0))
    coeffs: Mapping[str, Interval] = field(default_factory=dict)
    exact: bool = True

    # -- constructors ---------------------------------------------------
    @classmethod
    def constant(cls, v: Interval | float | int, *, exact: bool = True) -> AffineForm:
        return cls(const=Interval.of(v), exact=exact)

    @classmethod
    def feature(cls, name: str) -> AffineForm:
        return cls(coeffs={name: Interval.point(1.0)})

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def features(self) -> tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    # -- arithmetic -----------------------------------------------------
    def _merge(self, other: AffineForm, op) -> dict[str, Interval]:
        zero = Interval.point(0.0)
        out: dict[str, Interval] = {}
        for name in set(self.coeffs) | set(other.coeffs):
            c = op(self.coeffs.get(name, zero), other.coeffs.get(name, zero))
            if not (c.is_point and c.lo == 0.0):
                out[name] = c
        return out

    def __add__(self, other: AffineForm) -> AffineForm:
        return AffineForm(
            const=self.const + other.const,
            coeffs=self._merge(other, lambda a, b: a + b),
            exact=self.exact and other.exact,
        )

    def __neg__(self) -> AffineForm:
        return AffineForm(
            const=-self.const,
            coeffs={n: -c for n, c in self.coeffs.items()},
            exact=self.exact,
        )

    def __sub__(self, other: AffineForm) -> AffineForm:
        return self + (-other)

    def scale(self, k: Interval | float | int) -> AffineForm:
        ki = Interval.of(k)
        return AffineForm(
            const=self.const * ki,
            coeffs={n: c * ki for n, c in self.coeffs.items()},
            exact=self.exact and ki.is_point,
        )

    def mul(
        self, other: AffineForm, domains: Mapping[str, Interval] | None = None
    ) -> AffineForm:
        """Product.  Constant × form stays symbolic; a product of two
        feature-dependent forms is intervalized over ``domains``."""
        if other.is_constant:
            return self.scale(other.const)
        if self.is_constant:
            return other.scale(self.const)
        return AffineForm.constant(
            self.interval(domains) * other.interval(domains), exact=False
        )

    def join(self, other: AffineForm) -> AffineForm:
        return AffineForm(
            const=self.const.join(other.const),
            coeffs=self._merge(other, lambda a, b: a.join(b)),
            exact=False,
        )

    def widen_const(self, slack: Interval) -> AffineForm:
        """Add interval slack to the constant term (rounding enclosure)."""
        return AffineForm(
            const=self.const + slack, coeffs=dict(self.coeffs), exact=False
        )

    # -- concretization -------------------------------------------------
    def interval(self, domains: Mapping[str, Interval] | None = None) -> Interval:
        """Numeric enclosure over the feature domains (default: every
        feature ranges over ``NONNEG``)."""
        total = self.const
        for name, coeff in self.coeffs.items():
            dom = (domains or {}).get(name, NONNEG)
            if dom.lo < 0:
                raise ValueError(f"feature {name!r} domain must be non-negative")
            total = total + coeff * dom
        return total

    def lower_at(self, point: Mapping[str, float]) -> float:
        """The form's lower bound at a concrete (non-negative) point."""
        total = self.const.lo
        for name, coeff in self.coeffs.items():
            total += _mul(coeff.lo, float(point[name]))
        return total

    def upper_at(self, point: Mapping[str, float]) -> float:
        total = self.const.hi
        for name, coeff in self.coeffs.items():
            total += _mul(coeff.hi, float(point[name]))
        return total

    # -- rendering ------------------------------------------------------
    def _render(self, which: str) -> str:
        terms = [f"{getattr(self.const, which):g}"]
        for name in sorted(self.coeffs):
            c = getattr(self.coeffs[name], which)
            if c == 0.0:
                continue
            terms.append(f"{c:g}*{name}")
        return " + ".join(terms).replace("+ -", "- ")

    def lower_expr(self) -> str:
        """Symbolic lower bound (valid for non-negative features)."""
        return self._render("lo")

    def upper_expr(self) -> str:
        return self._render("hi")

    def __repr__(self) -> str:
        coeffs = ", ".join(f"{n}: {c!r}" for n, c in sorted(self.coeffs.items()))
        tag = "" if self.exact else ", ~"
        return f"AffineForm({self.const!r}{', ' if coeffs else ''}{coeffs}{tag})"
