"""repro.lint.verify: the performance-contract verifier.

Where the other lint families *check style*, this subpackage *proves
promises*: symbolic latency bounds by abstract interpretation over a
compiled net's flat arcs (:mod:`.bounds` on top of :mod:`.domain`),
monotonicity/Lipschitz certificates by derivative-sign analysis of
interface programs (:mod:`.monotone`), and :class:`PerfContract`
objects (:mod:`.contract`) that carry the results to the runtime —
``DevicePool`` registration, the healing loop's static promotion gate,
and the ``pnet verify`` CLI.  The verify-family rules (``VR0xx``,
:mod:`.rules`) report through the standard diagnostic machinery.
"""

from .bounds import (
    CornerCheck,
    NetBounds,
    abstract_expr,
    check_corners,
    corner_points,
    net_latency_bounds,
)
from .contract import (
    DEFAULT_EPSILON,
    PerfContract,
    Verification,
    analyze_bundle,
    load_contract,
    save_contract,
    sidecar_path,
    verify_candidate,
)
from .domain import NONNEG, TOP, AffineForm, Interval
from .monotone import (
    MonotoneCert,
    ProgramAnalysis,
    analyze_program,
    cert_for_deriv,
    sampled_cert,
)
from .rules import VerifyContext, verify_bundle

__all__ = [
    "DEFAULT_EPSILON",
    "NONNEG",
    "TOP",
    "AffineForm",
    "CornerCheck",
    "Interval",
    "MonotoneCert",
    "NetBounds",
    "PerfContract",
    "ProgramAnalysis",
    "Verification",
    "VerifyContext",
    "abstract_expr",
    "analyze_bundle",
    "analyze_program",
    "cert_for_deriv",
    "check_corners",
    "corner_points",
    "load_contract",
    "net_latency_bounds",
    "sampled_cert",
    "save_contract",
    "sidecar_path",
    "verify_bundle",
    "verify_candidate",
]
