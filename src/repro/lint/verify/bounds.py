"""Symbolic per-token latency bounds for a Petri-net interface.

The analysis lowers the net with :class:`~repro.petri.compiled.CompiledNet`
— the same flat ``(place, weight)`` arc tuples the fast engine executes —
and abstractly interprets every ``delay expr:`` over the
:mod:`~repro.lint.verify.domain` affine domain.  A token's journey from
the entry place to the sink is then a path through the flat arcs, and
the per-token latency bound is the join over every path of the summed
delay forms: one :class:`AffineForm` whose lower side is the best-case
latency and whose upper side is the worst case, symbolic in the token's
payload fields.

What the bound means — and does not mean:

* It is a **no-contention** bound: one token alone in the net.  Queueing
  behind other tokens, server contention, and capacity stalls are
  workload-dependent and deliberately out of scope (they are what the
  simulation engines are for).
* Branch places (several consumers) and forks (several outputs) are
  *joined*: the bound covers whichever way the token goes.
* A cycle reachable from the entry makes the upper bound ``inf``; the
  lower bound ignores the cycle (sound because delays are
  non-negative, which PL007 lints).
* A callable (``fn:`` or programmatic) delay on any reachable
  transition makes the net **opaque**: no symbolic bound is claimed.

:func:`check_corners` closes the loop: every symbolic bound is
concretized at the corner points of the declared feature domains and
checked against a real single-token run on the compiled engine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from itertools import product
from math import inf

from repro.petri.compiled import CompiledNet
from repro.petri.errors import SimulationError
from repro.petri.net import PetriNet

from ..netrules import expr_ast
from .domain import TOP, AffineForm, Interval
from .monotone import Abs, analyze_delay_expr, expr_features

#: Enumerating every domain corner is exponential in the feature count;
#: past this many corners the check samples the first features only.
MAX_CORNERS = 64


# ----------------------------------------------------------------------
# Expression abstraction
# ----------------------------------------------------------------------
def _fold(tree: ast.expr, env: Mapping[str, object]) -> float | None:
    """Concretely evaluate a token-independent subexpression."""
    from repro.petri.dsl import _SAFE_GLOBALS

    from ..netrules import depends_on_token

    if depends_on_token(tree):
        return None
    scope = dict(_SAFE_GLOBALS)
    scope.update(env)
    try:
        value = eval(  # noqa: S307 - same restricted scope as the DSL
            compile(ast.Expression(body=tree), "<verify>", "eval"), scope
        )
        return float(value)
    except Exception:
        return None


def abstract_expr(
    tree: ast.expr,
    *,
    env: Mapping[str, object] | None = None,
    domains: Mapping[str, Interval] | None = None,
) -> AffineForm | None:
    """Enclose a ``delay expr:`` AST in an affine form, or ``None`` when
    the expression uses a construct the domain cannot soundly model."""
    env = env or {}

    folded = _fold(tree, env)
    if folded is not None:
        return AffineForm.constant(folded)

    def go(node: ast.expr) -> AffineForm | None:
        const = _fold(node, env)
        if const is not None:
            return AffineForm.constant(const)
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "tok"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            return AffineForm.feature(node.slice.value)
        if isinstance(node, ast.UnaryOp):
            sub = go(node.operand)
            if sub is None:
                return None
            if isinstance(node.op, ast.USub):
                return -sub
            if isinstance(node.op, ast.UAdd):
                return sub
            return None
        if isinstance(node, ast.BinOp):
            left, right = go(node.left), go(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left.mul(right, domains)
            if isinstance(node.op, ast.Div):
                if right.is_constant and not right.const.contains(0.0):
                    return left.scale(Interval.point(1.0) / right.const)
                return AffineForm.constant(
                    left.interval(domains) / right.interval(domains), exact=False
                )
            if isinstance(node.op, ast.FloorDiv):
                if right.is_constant and right.const.lo > 0:
                    return left.scale(
                        Interval.point(1.0) / right.const
                    ).widen_const(Interval(-1.0, 0.0))
                quotient = left.interval(domains) / right.interval(domains)
                return AffineForm.constant(quotient + Interval(-1.0, 0.0), exact=False)
            if isinstance(node.op, ast.Mod):
                divisor = right.interval(domains)
                if divisor.lo > 0:
                    return AffineForm.constant(Interval(0.0, divisor.hi), exact=False)
                return None
            return None
        if isinstance(node, ast.IfExp):
            body, orelse = go(node.body), go(node.orelse)
            if body is None or orelse is None:
                return None
            return body.join(orelse)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            args = [go(a) for a in node.args]
            if any(a is None for a in args) or node.keywords:
                return None
            name = node.func.id
            if name == "ceil" and len(args) == 1:
                return args[0].widen_const(Interval(0.0, 1.0))
            if name == "floor" and len(args) == 1:
                return args[0].widen_const(Interval(-1.0, 0.0))
            if name == "abs" and len(args) == 1:
                return AffineForm.constant(
                    args[0].interval(domains).abs_(), exact=False
                )
            if name in ("min", "max") and len(args) >= 2:
                intervals = [a.interval(domains) for a in args]
                total = intervals[0]
                for iv in intervals[1:]:
                    total = total.min_(iv) if name == "min" else total.max_(iv)
                return AffineForm.constant(total, exact=False)
            return None
        return None

    return go(tree)


# ----------------------------------------------------------------------
# Path analysis over the compiled flat arcs
# ----------------------------------------------------------------------
@dataclass
class NetBounds:
    """Per-token latency bounds for one (entry, sink) pair."""

    entry: str
    sink: str
    #: Joined path form: lower side = best case, upper side = worst.
    #: ``None`` when the net is opaque or no path reaches the sink.
    form: AffineForm | None
    #: Per-feature difference-quotient intervals of the path latency
    #: (the monotonicity side-channel of the same traversal); ``None``
    #: exactly when ``form`` is.
    quotients: Mapping[str, Interval] | None = None
    #: Transitions whose delay could not be abstracted (callable / odd
    #: construct); non-empty forces ``form=None``.
    opaque: list[str] = field(default_factory=list)
    #: A cycle was reachable: the upper bound is unbounded.
    unbounded: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def evaluability(self) -> str:
        """Contract evaluability class for these bounds."""
        if self.form is None:
            return "opaque"
        return "closed-form" if self.form.exact and not self.notes else "piecewise"

    def interval(self, domains: Mapping[str, Interval] | None = None) -> Interval:
        if self.form is None:
            raise ValueError(f"net is opaque from entry {self.entry!r}")
        return self.form.interval(domains)


_CYCLE = object()


def net_latency_bounds(
    net: PetriNet,
    *,
    entry: str,
    sink: str = "out",
    env: Mapping[str, object] | None = None,
    domains: Mapping[str, Interval] | None = None,
) -> NetBounds:
    """Symbolic min/max per-token latency from ``entry`` to ``sink``."""
    if entry not in net.places:
        raise ValueError(f"entry place {entry!r} not in net")
    if sink not in net.places:
        raise ValueError(f"sink place {sink!r} not in net")

    bounds = NetBounds(entry=entry, sink=sink, form=None)
    try:
        compiled = CompiledNet(net)
    except SimulationError as exc:
        bounds.opaque.append(str(exc))
        return bounds

    ordered = net.ordered_transitions()
    delay_forms: list[AffineForm | None] = []
    delay_abs: list[Abs | None] = []
    guard_feats: list[set[str]] = []
    for ti, t in enumerate(ordered):
        guard_tree = expr_ast(getattr(t, "guard_src", None))
        guard_feats.append(
            expr_features(guard_tree, "tok") if guard_tree is not None else set()
        )
        const = compiled.t_delay_const[ti]
        if const is not None:
            delay_forms.append(AffineForm.constant(const))
            delay_abs.append(Abs.constant(const))
            continue
        tree = expr_ast(getattr(t, "delay_src", None))
        if tree is None:
            delay_forms.append(None)
            delay_abs.append(None)
            continue
        delay_forms.append(abstract_expr(tree, env=env, domains=domains))
        a, _ = analyze_delay_expr(tree, env=env, domains=domains)
        delay_abs.append(a)

    sink_idx = compiled.place_index[sink]
    entry_idx = compiled.place_index[entry]
    memo: dict[int, tuple[AffineForm, Abs] | None] = {}
    stack: set[int] = set()
    zero = (AffineForm.constant(0.0), Abs.constant(0.0))
    guards_seen = joins_seen = False

    def place_bound(p: int):
        nonlocal guards_seen, joins_seen
        if p == sink_idx:
            return zero
        if p in memo:
            return memo[p]
        if p in stack:
            return _CYCLE
        stack.add(p)
        joined: tuple[AffineForm, Abs] | None = None
        try:
            for ti in compiled.consumers[p]:
                f = delay_forms[ti]
                fa = delay_abs[ti]
                if f is None or fa is None:
                    name = compiled.t_names[ti]
                    if name not in bounds.opaque:
                        bounds.opaque.append(name)
                    continue
                if compiled.t_guard[ti] is not None:
                    guards_seen = True
                    if guard_feats[ti]:
                        # The routing decision itself depends on these
                        # fields: the latency can jump arbitrarily as
                        # they change, so their quotients are unknown.
                        fa = Abs(
                            fa.value,
                            {
                                **dict(fa.deriv),
                                **dict.fromkeys(guard_feats[ti], TOP),
                            },
                        )
                if len(compiled.t_in[ti]) > 1 or any(
                    w > 1 for _, w in compiled.t_in[ti]
                ):
                    joins_seen = True
                cont: tuple[AffineForm, Abs] | None = None
                n_outputs = 0
                for q, _w in compiled.t_out[ti]:
                    r = place_bound(q)
                    if r is _CYCLE:
                        bounds.unbounded = True
                        continue
                    if r is None:
                        continue
                    n_outputs += 1
                    cont = (
                        r
                        if cont is None
                        else (cont[0].join(r[0]), cont[1].join(r[1]))
                    )
                if cont is None:
                    continue
                option_form = f + cont[0]
                option_abs = fa + cont[1]
                if n_outputs > 1:
                    option_form = AffineForm(
                        option_form.const, dict(option_form.coeffs), exact=False
                    )
                joined = (
                    (option_form, option_abs)
                    if joined is None
                    else (
                        joined[0].join(option_form),
                        joined[1].join(option_abs),
                    )
                )
        finally:
            stack.discard(p)
        memo[p] = joined
        return joined

    result = place_bound(entry_idx)
    if result is _CYCLE or result is None:
        if not bounds.opaque:
            bounds.notes.append(
                f"no acyclic path from {entry!r} to {sink!r} with boundable delays"
            )
            return bounds
        result = None
    if bounds.opaque:
        # A token *could* route through the opaque transition; no sound
        # symbolic claim survives that.
        bounds.notes.append(
            "opaque delays reachable: " + ", ".join(sorted(bounds.opaque))
        )
        return bounds
    form, abs_ = result
    if bounds.unbounded:
        form = AffineForm(
            Interval(form.const.lo, inf), dict(form.coeffs), exact=False
        )
        abs_ = Abs(
            Interval(abs_.value.lo, inf),
            dict.fromkeys(abs_.deriv, TOP),
        )
        bounds.notes.append("cycle reachable from entry: upper bound is unbounded")
    if guards_seen:
        bounds.notes.append("guarded branches joined (guards not tracked)")
    if joins_seen:
        bounds.notes.append(
            "synchronizing transition on a path (single-token bound only)"
        )
    bounds.form = form
    bounds.quotients = dict(abs_.deriv)
    return bounds


# ----------------------------------------------------------------------
# Corner-point concretization against the compiled engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CornerCheck:
    """One concretization probe: a payload, the engine's latency, and
    the symbolic bound evaluated at that payload."""

    point: Mapping[str, float]
    simulated: float
    lower: float
    upper: float
    epsilon: float

    @property
    def ok(self) -> bool:
        tol_lo = self.epsilon * max(1.0, abs(self.lower))
        tol_hi = self.epsilon * max(1.0, abs(self.upper))
        return self.lower - tol_lo <= self.simulated <= self.upper + tol_hi


def corner_points(
    domains: Mapping[str, tuple[float, float]],
    *,
    limit: int = MAX_CORNERS,
) -> Iterator[dict[str, float]]:
    """The corners of the domain box (every feature at its lo or hi),
    capped at ``limit`` points for high-dimensional domains."""
    names = sorted(domains)
    if not names:
        yield {}
        return
    emitted = 0
    # Point domains (lo == hi) would duplicate every corner; dedupe so
    # each distinct corner is simulated once.
    axes = [
        (domains[n][0],) if domains[n][0] == domains[n][1] else domains[n]
        for n in names
    ]
    for combo in product(*axes):
        if emitted >= limit:
            return
        yield dict(zip(names, combo, strict=True))
        emitted += 1


def _payload(point: Mapping[str, float]) -> dict | None:
    if not point:
        return None
    out = {}
    for name, v in point.items():
        fv = float(v)
        out[name] = int(fv) if fv.is_integer() else fv
    return out


def check_corners(
    net_factory,
    bounds: NetBounds,
    domains: Mapping[str, tuple[float, float]],
    *,
    epsilon: float = 0.02,
    engine: str = "auto",
) -> list[CornerCheck]:
    """Run one token per domain corner through the engine and check the
    observed latency lies inside the concretized symbolic bound.

    ``net_factory`` must build a fresh net per run (simulation mutates
    marking state).  Features with unbounded domains are skipped — the
    corner box must be finite to enumerate.
    """
    from repro.petri.compiled import make_simulator

    if bounds.form is None:
        return []
    finite = {
        n: d for n, d in domains.items() if d[1] < inf and d[0] > -inf
    }
    checks: list[CornerCheck] = []
    for point in corner_points(finite):
        # Features without a declared finite domain sit at 0 (their
        # non-negative floor) so the bound evaluation stays sound.
        full = {n: 0.0 for n in bounds.form.features}
        full.update(point)
        net = net_factory()
        sim = make_simulator(net, sinks=(bounds.sink,), engine=engine)
        sim.inject_stream(bounds.entry, [_payload(full)])
        result = sim.run()
        latencies = result.latencies()
        if not latencies:
            # No completion: either a guard refused the probe token or
            # the net needs resident tokens; report as a failed check.
            checks.append(
                CornerCheck(
                    point=full,
                    simulated=float("nan"),
                    lower=bounds.form.lower_at(full),
                    upper=bounds.form.upper_at(full),
                    epsilon=epsilon,
                )
            )
            continue
        for lat in latencies:
            checks.append(
                CornerCheck(
                    point=full,
                    simulated=float(lat),
                    lower=bounds.form.lower_at(full),
                    upper=bounds.form.upper_at(full),
                    epsilon=epsilon,
                )
            )
    return checks
