"""Performance contracts: what an interface *promises*, as data.

A :class:`PerfContract` is the verifier's output and the runtime's
input: symbolic and numeric latency bounds, per-feature monotonicity
certificates, an evaluability class, and the epsilon within which the
bounds were checked against the compiled engine.  Contracts serialize
to a ``.contract.json`` sidecar next to the ``.pnet`` source, ride on
:class:`~repro.lint.bundle.InterfaceBundle`, and are what
``DevicePool`` checks at registration and ``HealingManager`` checks
before spending shadow traffic on a refit candidate.

:func:`analyze_bundle` derives a contract from a bundle's shipped
representations; :func:`verify_candidate` statically vets a runtime
refit candidate (an extracted linear interface) against basic sanity
and, when available, a contract's slope certificates.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from math import inf, isnan
from typing import TYPE_CHECKING, Any

from .bounds import CornerCheck, NetBounds, check_corners, net_latency_bounds
from .domain import TOP, Interval
from .monotone import (
    ANY_FEATURE,
    MonotoneCert,
    analyze_program,
    cert_for_deriv,
    sampled_cert,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bundle import InterfaceBundle

EVALUABILITY = ("closed-form", "piecewise", "opaque")

#: Default relative tolerance for corner-point concretization checks.
DEFAULT_EPSILON = 0.02


def _num_to_json(v: float) -> Any:
    if v == inf:
        return "inf"
    if v == -inf:
        return "-inf"
    return v


def _num_from_json(v: Any) -> float:
    if v == "inf":
        return inf
    if v == "-inf":
        return -inf
    return float(v)


@dataclass(frozen=True)
class PerfContract:
    """A verified (or declared) performance promise for one interface.

    ``min_latency``/``max_latency`` bound a single request's
    no-contention latency over the declared feature ``domains``;
    ``min_expr``/``max_expr`` are the symbolic forms those numbers were
    concretized from (absent for opaque interfaces).  ``monotone``
    carries one certificate per feature; ``evaluability`` says how much
    of the promise is closed-form.  ``epsilon`` is the relative
    tolerance the contract's bounds were (or must be) validated to.
    """

    accelerator: str
    entry: str = "in"
    sink: str = "out"
    domains: Mapping[str, tuple[float, float]] = field(default_factory=dict)
    min_expr: str | None = None
    max_expr: str | None = None
    min_latency: float = 0.0
    max_latency: float = inf
    monotone: tuple[MonotoneCert, ...] = ()
    evaluability: str = "opaque"
    epsilon: float = DEFAULT_EPSILON
    notes: tuple[str, ...] = ()

    def cert_for(self, feature: str) -> MonotoneCert | None:
        for cert in self.monotone:
            if cert.feature == feature:
                return cert
        return None

    def validate(self) -> list[str]:
        """Internal-consistency problems, empty when well-formed."""
        problems: list[str] = []
        if self.evaluability not in EVALUABILITY:
            problems.append(
                f"evaluability must be one of {EVALUABILITY}, "
                f"not {self.evaluability!r}"
            )
        if not self.epsilon > 0:
            problems.append(f"epsilon must be positive, not {self.epsilon!r}")
        if isnan(self.min_latency) or isnan(self.max_latency):
            problems.append("latency bounds cannot be NaN")
        elif self.min_latency > self.max_latency:
            problems.append(
                f"min latency {self.min_latency:g} exceeds max "
                f"{self.max_latency:g}"
            )
        if self.min_latency < 0:
            problems.append(f"min latency {self.min_latency:g} is negative")
        for name, (lo, hi) in self.domains.items():
            if lo > hi:
                problems.append(f"feature {name!r} domain [{lo:g}, {hi:g}] is empty")
            if lo < 0:
                problems.append(
                    f"feature {name!r} domain starts at {lo:g}: workload "
                    f"features are non-negative"
                )
        seen: set[str] = set()
        for cert in self.monotone:
            if cert.feature in seen:
                problems.append(f"duplicate certificate for feature {cert.feature!r}")
            seen.add(cert.feature)
        return problems

    # -- serialization --------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "accelerator": self.accelerator,
            "entry": self.entry,
            "sink": self.sink,
            "domains": {
                k: [_num_to_json(lo), _num_to_json(hi)]
                for k, (lo, hi) in sorted(self.domains.items())
            },
            "min_expr": self.min_expr,
            "max_expr": self.max_expr,
            "min_latency": _num_to_json(self.min_latency),
            "max_latency": _num_to_json(self.max_latency),
            "monotone": [c.to_json() for c in self.monotone],
            "evaluability": self.evaluability,
            "epsilon": self.epsilon,
            "notes": list(self.notes),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> PerfContract:
        return cls(
            accelerator=data["accelerator"],
            entry=data.get("entry", "in"),
            sink=data.get("sink", "out"),
            domains={
                k: (_num_from_json(v[0]), _num_from_json(v[1]))
                for k, v in data.get("domains", {}).items()
            },
            min_expr=data.get("min_expr"),
            max_expr=data.get("max_expr"),
            min_latency=_num_from_json(data.get("min_latency", 0.0)),
            max_latency=_num_from_json(data.get("max_latency", "inf")),
            monotone=tuple(
                MonotoneCert.from_json(c) for c in data.get("monotone", ())
            ),
            evaluability=data.get("evaluability", "opaque"),
            epsilon=float(data.get("epsilon", DEFAULT_EPSILON)),
            notes=tuple(data.get("notes", ())),
        )


def sidecar_path(pnet_path: str) -> str:
    """Where a net's contract serializes: ``x.pnet`` -> ``x.contract.json``."""
    if pnet_path.endswith(".pnet"):
        return pnet_path[: -len(".pnet")] + ".contract.json"
    return pnet_path + ".contract.json"


def save_contract(contract: PerfContract, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(contract.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_contract(path: str) -> PerfContract:
    with open(path, encoding="utf-8") as fh:
        return PerfContract.from_json(json.load(fh))


# ----------------------------------------------------------------------
# Deriving a contract from a bundle
# ----------------------------------------------------------------------
@dataclass
class Verification:
    """Everything one verifier run over a bundle produced."""

    bundle: InterfaceBundle
    net: Any = None
    net_filename: str | None = None
    bounds: NetBounds | None = None
    corners: list[CornerCheck] = field(default_factory=list)
    certs: tuple[MonotoneCert, ...] = ()
    contract: PerfContract | None = None
    declared: PerfContract | None = None
    epsilon: float = DEFAULT_EPSILON
    notes: list[str] = field(default_factory=list)


def _merge_certs(
    into: dict[str, MonotoneCert], new: Sequence[MonotoneCert]
) -> None:
    """Keep the most informative certificate per feature: a proof
    beats anything; otherwise a witness beats a bare unknown."""
    for cert in new:
        current = into.get(cert.feature)
        if current is None:
            into[cert.feature] = cert
            continue
        if current.proven:
            continue
        if cert.proven or (cert.witness is not None and current.witness is None):
            into[cert.feature] = cert


def _feature_pairs(bundle: InterfaceBundle, feature: str):
    """(feature vector, predicted latency) samples for one feature,
    built from the bundle's workload samples; None when the feature or
    a latency prediction is not reachable from the samples."""
    if bundle.program is None or not bundle.samples:
        return None
    pairs = []
    for item in bundle.samples:
        try:
            value = getattr(item, feature)
            if callable(value):
                value = value()
            pairs.append(({feature: float(value)}, float(bundle.program.latency(item))))
        except Exception:
            return None
    return pairs if len({p[0][feature] for p in pairs}) >= 2 else None


def analyze_bundle(
    bundle: InterfaceBundle,
    *,
    epsilon: float | None = None,
    engine: str = "auto",
) -> Verification:
    """Run the full static analysis over one bundle and derive its
    contract: net bounds + corner concretization + monotonicity
    certificates from every source (net quotients, program derivative
    analysis, sampled fallback for declared features)."""
    from repro.petri.errors import DslError, SimulationError

    declared = bundle.contract if isinstance(bundle.contract, PerfContract) else None
    eps = epsilon if epsilon is not None else (
        declared.epsilon if declared is not None else DEFAULT_EPSILON
    )
    v = Verification(bundle=bundle, declared=declared, epsilon=eps)

    domains = dict(bundle.feature_domains)
    iv_domains = {
        k: Interval(float(lo), float(hi)) for k, (lo, hi) in domains.items()
    }

    try:
        v.net, v.net_filename = bundle.build_net()
    except DslError as exc:
        v.notes.append(f"net does not parse: {exc}")

    if v.net is not None:
        try:
            v.bounds = net_latency_bounds(
                v.net,
                entry=bundle.entry,
                sink=bundle.sink,
                env=bundle.pnet_env,
                domains=iv_domains,
            )
        except ValueError as exc:
            v.notes.append(f"bound analysis skipped: {exc}")
    if v.bounds is not None and v.bounds.form is not None:
        try:
            v.corners = check_corners(
                lambda: bundle.build_net()[0],
                v.bounds,
                domains,
                epsilon=eps,
                engine=engine,
            )
        except SimulationError as exc:
            v.notes.append(f"corner simulation failed: {exc}")

    certs: dict[str, MonotoneCert] = {}
    if v.bounds is not None and v.bounds.quotients is not None:
        proof = "affine" if v.bounds.form is not None and v.bounds.form.exact else "derivative"
        quotients = dict(v.bounds.quotients)
        if quotients.pop(ANY_FEATURE, None) is not None:
            # The token escaped into something unmodeled: every
            # per-feature quotient is untrustworthy.
            quotients = dict.fromkeys(quotients, TOP)
        _merge_certs(
            certs,
            [
                cert_for_deriv(name, deriv, proof=proof)
                for name, deriv in sorted(quotients.items())
            ],
        )
    for role, fn in bundle.program_fns.items():
        if "latency" not in role.lower():
            continue
        analysis = analyze_program(
            fn, workload_type=bundle.workload_type, domains=domains
        )
        if analysis.ok:
            _merge_certs(certs, analysis.certs())
    for feature, sign in bundle.declared_monotone.items():
        current = certs.get(feature)
        if current is not None and current.proven:
            continue
        pairs = _feature_pairs(bundle, feature)
        if pairs is not None:
            _merge_certs(certs, [sampled_cert(feature, pairs, sign)])

    bound_interval: Interval | None = None
    if v.bounds is not None and v.bounds.form is not None:
        bound_interval = v.bounds.form.interval(iv_domains or None)
    v.contract = PerfContract(
        accelerator=bundle.accelerator,
        entry=bundle.entry,
        sink=bundle.sink,
        domains=domains,
        min_expr=v.bounds.form.lower_expr() if bound_interval is not None else None,
        max_expr=v.bounds.form.upper_expr() if bound_interval is not None else None,
        min_latency=max(0.0, bound_interval.lo) if bound_interval is not None else 0.0,
        max_latency=bound_interval.hi if bound_interval is not None else inf,
        monotone=tuple(certs[name] for name in sorted(certs)),
        evaluability=v.bounds.evaluability if v.bounds is not None else "opaque",
        epsilon=eps,
        notes=tuple(
            v.notes + (v.bounds.notes if v.bounds is not None else [])
        ),
    )
    return v


# ----------------------------------------------------------------------
# Statically vetting runtime refit candidates
# ----------------------------------------------------------------------
def verify_candidate(
    candidate: Any,
    contract: PerfContract | None = None,
    *,
    tol: float = 1e-9,
) -> list[str]:
    """Static objections to trusting ``candidate`` as a pricing
    interface; empty means no objection.

    Extracted linear interfaces (the healing loop's refit output)
    expose their coefficients, so their monotonicity is decidable
    exactly: a negative weight means the candidate prices larger
    workloads *cheaper* — the classic under-pricing defect — and is
    rejected outright.  When a contract is supplied, a weight may also
    not exceed the contract's certified slope bound for the same
    feature.  Opaque candidates are only checked against the
    contract's own well-formedness.
    """
    reasons: list[str] = []
    if contract is not None:
        reasons.extend(
            f"contract invalid: {problem}" for problem in contract.validate()
        )
    names = getattr(candidate, "_names", None)
    weights = getattr(candidate, "_weights", None)
    if names is None or weights is None:
        return reasons
    intercept = float(getattr(candidate, "_intercept", 0.0))
    if intercept < -tol:
        reasons.append(
            f"negative intercept {intercept:g}: the candidate predicts "
            f"negative cost for an empty workload"
        )
    for name, weight in zip(names, weights, strict=True):
        w = float(weight)
        if isnan(w):
            reasons.append(f"feature {name!r} has NaN weight")
            continue
        if w < -tol:
            reasons.append(
                f"feature {name!r} has negative weight {w:g}: the candidate "
                f"prices larger {name} cheaper (non-monotone in {name})"
            )
            continue
        if contract is None:
            continue
        cert = contract.cert_for(name)
        if (
            cert is not None
            and cert.proven
            and cert.direction == "non-decreasing"
            and cert.slope is not None
            and cert.slope != inf
            and w > cert.slope * (1.0 + contract.epsilon) + tol
        ):
            reasons.append(
                f"feature {name!r} weight {w:g} exceeds the contract's "
                f"certified slope bound {cert.slope:g}"
            )
    return reasons
