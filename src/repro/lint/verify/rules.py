"""Verify-family rules: the static promotion gate as lint passes.

These rules consume a completed :class:`~.contract.Verification` (the
bound analysis, corner checks, and certificates are computed once by
:func:`verify_bundle`, not per rule) and report through the same
diagnostic machinery as every other lint family — so ``pnet verify``
renders, filters, and exits exactly like ``pnet lint``.

Rule ids are ``VR0xx``; the catalog lives in ``docs/perf-lint.md``:

* VR001 (warning) — no symbolic bound could be proven (opaque delays,
  unparseable net, missing entry/sink).  A warning, not an error:
  opacity is a capability statement, not a defect.
* VR002 (error) — a corner-point concretization disagreed with the
  compiled engine: the symbolic bound is *wrong*, not just loose.
* VR003 (error) — the derived bounds escape a declared contract.
* VR004 — a declared monotone feature is refuted by a concrete
  witness (error) or cannot be certified at all (warning).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from ..registry import rule
from ..witness import Witness
from .contract import Verification, analyze_bundle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bundle import InterfaceBundle
    from ..registry import RuleRegistry


@dataclass
class VerifyContext:
    """What a verify-family rule may look at: one finished run."""

    v: Verification

    def loc(self) -> SourceLocation:
        return SourceLocation(file=self.v.net_filename)

    def diag(
        self,
        rule_id: str,
        severity: Severity,
        message: str,
        *,
        hint: str | None = None,
        subject: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=rule_id,
            severity=severity,
            message=message,
            location=self.loc(),
            subject=subject or self.v.bundle.accelerator,
            hint=hint,
        )


@rule("VR001", "verify", "No symbolic latency bound could be proven")
def check_bound_exists(ctx: VerifyContext) -> Iterator[Diagnostic]:
    v = ctx.v
    if v.bounds is not None and v.bounds.form is not None:
        return
    if v.bounds is not None and v.bounds.opaque:
        detail = "opaque delays: " + ", ".join(sorted(v.bounds.opaque))
    elif v.notes:
        detail = "; ".join(v.notes)
    elif v.net is None:
        detail = "the bundle ships no Petri net"
    else:
        detail = "; ".join(v.bounds.notes) if v.bounds is not None else "unknown"
    yield ctx.diag(
        "VR001",
        Severity.WARNING,
        f"no symbolic latency bound could be proven ({detail}); the "
        f"contract is opaque and consumers fall back to simulation",
        hint="expression delays (`delay expr:`) are boundable; callable "
        "delays and missing nets are not",
    )


@rule("VR002", "verify", "Symbolic bound disagrees with the compiled engine")
def check_corner_concretization(ctx: VerifyContext) -> Iterator[Diagnostic]:
    v = ctx.v
    for check in v.corners:
        if check.ok:
            continue
        point = ", ".join(f"{k}={v_:g}" for k, v_ in sorted(check.point.items()))
        yield ctx.diag(
            "VR002",
            Severity.ERROR,
            f"at corner {{{point}}} the compiled engine measured "
            f"{check.simulated:g} cycles, outside the concretized bound "
            f"[{check.lower:g}, {check.upper:g}] (epsilon {check.epsilon:g})",
            hint="the symbolic bound is unsound for this net: fix the "
            "abstraction or the net, do not widen epsilon to paper over it",
        )


@rule("VR003", "verify", "Derived bounds escape the declared contract")
def check_declared_bounds(ctx: VerifyContext) -> Iterator[Diagnostic]:
    v = ctx.v
    declared = v.declared
    if declared is None or v.contract is None:
        return
    derived = v.contract
    tol_min = declared.epsilon * max(1.0, abs(declared.min_latency))
    if derived.min_latency < declared.min_latency - tol_min:
        yield ctx.diag(
            "VR003",
            Severity.ERROR,
            f"the declared contract promises latency >= "
            f"{declared.min_latency:g}, but the verifier derives a minimum "
            f"of {derived.min_latency:g}",
            hint="the shipped net can be faster than the contract admits; "
            "lower the declared floor or fix the net",
        )
    tol_max = declared.epsilon * max(1.0, abs(declared.max_latency))
    if derived.max_latency > declared.max_latency + tol_max:
        derived_max = (
            "unbounded" if derived.max_latency == float("inf")
            else f"{derived.max_latency:g}"
        )
        yield ctx.diag(
            "VR003",
            Severity.ERROR,
            f"the declared contract promises latency <= "
            f"{declared.max_latency:g}, but the verifier derives a maximum "
            f"of {derived_max} over the declared domains",
            hint="a consumer provisioning against the declared ceiling "
            "would miss deadlines; raise the ceiling or shrink the domains",
        )


@rule("VR004", "verify", "Declared monotone feature is refuted or uncertified")
def check_declared_monotone(ctx: VerifyContext) -> Iterator[Diagnostic]:
    v = ctx.v
    if v.contract is None:
        return
    for feature, sign in sorted(v.bundle.declared_monotone.items()):
        direction = "non-decreasing" if sign > 0 else "non-increasing"
        cert = v.contract.cert_for(feature)
        if cert is None:
            yield ctx.diag(
                "VR004",
                Severity.WARNING,
                f"feature {feature!r} is declared {direction} but no "
                f"representation reads it: nothing certifies the claim",
                hint="drop the declaration or wire the feature into a "
                "delay expression / program function",
            )
            continue
        agrees = cert.agrees(sign)
        if agrees is True and cert.proven:
            continue
        if agrees is False:
            slope = (
                f" (certified slope {cert.slope:g} the wrong way)"
                if cert.slope is not None and cert.slope != float("inf")
                else ""
            )
            yield ctx.diag(
                "VR004",
                Severity.ERROR,
                f"feature {feature!r} is declared {direction}, but the "
                f"verifier proves it {cert.direction}{slope}",
                hint="one side is wrong: fix the declaration or the model",
            )
            continue
        if cert.witness is not None:
            yield ctx.diag(
                "VR004",
                Severity.ERROR,
                f"feature {feature!r} is declared {direction}, but a "
                f"concrete counterexample exists: {cert.witness.render()}",
                hint="the model under-prices part of the workload space; "
                "a consumer provisioning from small-workload samples "
                "would be surprised",
            )
            continue
        detail = (
            "samples are consistent with the claim but prove nothing"
            if cert.proof == "sampled"
            else "the derivative analysis could not determine a direction"
        )
        yield ctx.diag(
            "VR004",
            Severity.WARNING,
            f"feature {feature!r} is declared {direction} but not proven: "
            f"{detail}",
            hint="simplify the model until the analysis can certify it, "
            "or accept sampled evidence explicitly",
        )


def verify_bundle(
    bundle: InterfaceBundle,
    *,
    epsilon: float | None = None,
    engine: str = "auto",
    registry: RuleRegistry | None = None,
) -> tuple[LintReport, Verification]:
    """Statically verify one bundle: derive its contract, check every
    corner against the compiled engine, certify monotonicity, and run
    the verify-family rules.  Returns the report plus the full
    verification result (whose ``.contract`` is the derived contract)."""
    from ..registry import DEFAULT_REGISTRY

    v = analyze_bundle(bundle, epsilon=epsilon, engine=engine)
    ctx = VerifyContext(v=v)
    report = LintReport()
    report.extend((registry or DEFAULT_REGISTRY).run_family("verify", ctx))
    return report, v


__all__ = ["VerifyContext", "verify_bundle", "Witness"]
