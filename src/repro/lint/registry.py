"""Rule registry: how lint passes are named, grouped, and extended.

Every check is a :class:`Rule` — a stable id, a family ("net",
"program", "cross", or "verify"), a one-line summary for the catalog, and the
pass function itself.  The default registry holds the built-in rules;
accelerator packages can ship their own by attaching extra rules to
their lint bundle (see :mod:`repro.lint.bundle`) or by registering
into a copied registry — vendor rules ride through the same reporting
and gating machinery as built-ins.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from .diagnostics import Diagnostic

#: A pass function: takes a family-specific context, yields diagnostics.
RuleFn = Callable[[Any], Iterable[Diagnostic]]

FAMILIES = ("net", "program", "cross", "verify")


@dataclass(frozen=True)
class Rule:
    """One registered lint pass."""

    id: str
    family: str
    title: str
    fn: RuleFn = field(repr=False)

    def run(self, ctx: Any) -> list[Diagnostic]:
        return list(self.fn(ctx))


class RuleRegistry:
    """Holds rules, keyed by id, grouped by family."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: dict[str, Rule] = {}
        for r in rules:
            self.register(r)

    def register(self, rule: Rule) -> Rule:
        if rule.family not in FAMILIES:
            raise ValueError(
                f"rule {rule.id}: family must be one of {FAMILIES}, not {rule.family!r}"
            )
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self._rules[rule.id] = rule
        return rule

    def rule(self, id: str, family: str, title: str) -> Callable[[RuleFn], RuleFn]:
        """Decorator: register ``fn`` as rule ``id`` and return it unchanged."""

        def deco(fn: RuleFn) -> RuleFn:
            self.register(Rule(id=id, family=family, title=title, fn=fn))
            return fn

        return deco

    def family(self, family: str) -> list[Rule]:
        return [r for r in self._rules.values() if r.family == family]

    def copy(self) -> RuleRegistry:
        """Independent registry with the same rules — the extension
        point for consumers that want built-ins plus their own checks."""
        return RuleRegistry(self._rules.values())

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __getitem__(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def run_family(self, family: str, ctx: Any) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for rule in self.family(family):
            out.extend(rule.run(ctx))
        return out


#: The built-in rules; importing the rule modules populates it.
DEFAULT_REGISTRY = RuleRegistry()

#: Decorator bound to the default registry, used by the built-in passes.
rule = DEFAULT_REGISTRY.rule
