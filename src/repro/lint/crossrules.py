"""Cross-representation lint passes.

The paper ships the *same* accelerator's performance interface at
three fidelities — English statements, an executable program, and a
timed Petri net.  A consumer reading all three should never find them
contradicting each other.  These passes reconcile the bundle: names
must agree, every declared workload field should earn its keep, every
English claim should be checkable and — where samples are available —
actually hold against the executable model.

Monotonicity reconciliation (XR004) is deliberately direction-only:
"inversely proportional" is checked as "decreases as the property
grows" rather than as strict ratio constancy, because real models
plateau (e.g. a compute-bound stage stops caring about compression
rate) without invalidating the qualitative claim.

Rule ids are ``XR0xx``; the catalog lives in ``docs/perf-lint.md``.
"""

from __future__ import annotations

import re
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.nl import Relation, _spread

from .diagnostics import Diagnostic, Severity, SourceLocation
from .netrules import expr_ast, tok_fields
from .registry import rule
from .witness import worst_discordant_pair

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.petri.net import PetriNet

    from .bundle import InterfaceBundle


def _normalize(name: str) -> str:
    return re.sub(r"[-_\s]+", "", name).lower()


@dataclass
class BundleLintContext:
    """A whole accelerator bundle plus its (already built) net."""

    bundle: InterfaceBundle
    net: PetriNet | None = None
    net_filename: str | None = None

    def loc(self) -> SourceLocation:
        return SourceLocation(file=self.net_filename)

    def diag(
        self,
        rule_id: str,
        severity: Severity,
        message: str,
        *,
        hint: str | None = None,
        subject: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=rule_id,
            severity=severity,
            message=message,
            location=self.loc(),
            subject=subject or self.bundle.accelerator,
            hint=hint,
        )


@rule("XR001", "cross", "Representations disagree about which accelerator they describe")
def check_accelerator_names(ctx: BundleLintContext) -> Iterator[Diagnostic]:
    b = ctx.bundle
    claimed: list[tuple[str, str]] = [("bundle", b.accelerator)]
    if b.english is not None:
        claimed.append(("english", b.english.accelerator))
    if b.program is not None:
        claimed.append(("program", b.program.accelerator))
    if ctx.net is not None:
        claimed.append(("petri net", ctx.net.name))
    reference = _normalize(b.accelerator)
    for rep, name in claimed[1:]:
        got = _normalize(name)
        if reference not in got and got not in reference:
            yield ctx.diag(
                "XR001",
                Severity.WARNING,
                f"the {rep} representation says it describes {name!r}, but "
                f"the bundle is for {b.accelerator!r}",
                hint="a consumer composing interfaces by name would pick up "
                "the wrong model; align the accelerator names",
            )


@rule("XR002", "cross", "Injected token field is never read by the net")
def check_injected_fields_used(ctx: BundleLintContext) -> Iterator[Diagnostic]:
    if ctx.net is None:
        return
    injections = dict(getattr(ctx.net, "injections", {}))
    injections.update(ctx.bundle.injected)
    declared: set[str] = set()
    for fields in injections.values():
        if fields:
            declared.update(fields)
    if not declared:
        return
    read: set[str] = set()
    for t in ctx.net.transitions.values():
        for attr, src in (
            (t.delay, getattr(t, "delay_src", None)),
            (t.guard, getattr(t, "guard_src", None)),
        ):
            tree = expr_ast(src)
            if tree is not None:
                read.update(tok_fields(tree))
            elif callable(attr):
                # An opaque Python callable (``fn:`` or programmatic)
                # may read any field; nothing can be proven unread.
                return
    for name in sorted(declared - read):
        yield ctx.diag(
            "XR002",
            Severity.INFO,
            f"injected token field {name!r} is declared but no delay or "
            f"guard expression reads it",
            hint="bookkeeping fields (indices, ids) are fine; otherwise drop "
            "the field from the inject declaration",
        )


@rule("XR003", "cross", "English statement cannot be validated automatically")
def check_statements_verifiable(ctx: BundleLintContext) -> Iterator[Diagnostic]:
    english = ctx.bundle.english
    if english is None:
        return
    for stmt in english.statements:
        if stmt.accessor is None:
            yield ctx.diag(
                "XR003",
                Severity.WARNING,
                f"statement {stmt.render()!r} has no accessor: nothing can "
                f"check it against the executable representations",
                hint="attach an accessor extracting the named property from "
                "a workload item (or a config), so the claim is testable",
            )


def _direction(relation: Relation) -> int | None:
    if relation in (Relation.PROPORTIONAL, Relation.INCREASES_WITH):
        return +1
    if relation in (Relation.INVERSELY_PROPORTIONAL, Relation.DECREASES_WITH):
        return -1
    return None


def _concordance(pairs: list[tuple[float, float]], sign: int) -> float | None:
    concordant = discordant = 0
    n = len(pairs)
    for i in range(n):
        for j in range(i + 1, n):
            xi, yi = pairs[i]
            xj, yj = pairs[j]
            if xi == xj or yi == yj:
                continue
            agree = (yj - yi) * (xj - xi) * sign > 0
            concordant += int(agree)
            discordant += int(not agree)
    total = concordant + discordant
    if total == 0:
        return None
    return concordant / total


@rule("XR004", "cross", "English claim contradicts the executable model")
def check_monotonicity(ctx: BundleLintContext) -> Iterator[Diagnostic]:
    b = ctx.bundle
    if b.english is None or b.program is None or not b.samples:
        return
    for stmt in b.english.statements:
        if stmt.accessor is None or not stmt.metric.lower().startswith("latency"):
            continue
        try:
            pairs = [
                (float(stmt.accessor(item)), float(b.program.latency(item)))
                for item in b.samples
            ]
        except Exception:
            continue  # accessor targets a config, not a workload item
        if len({x for x, _ in pairs}) < 2:
            continue
        if stmt.relation is Relation.CONSTANT:
            if _spread([y for _, y in pairs]) > 0.3:
                yield ctx.diag(
                    "XR004",
                    Severity.ERROR,
                    f"the English interface claims {stmt.render()!r}, but "
                    f"the program interface's latency varies with it over "
                    f"the bundle's samples",
                    hint="one of the two representations is wrong; a "
                    "consumer trusting the English one would misprovision",
                )
            continue
        sign = _direction(stmt.relation)
        if sign is None:
            continue
        score = _concordance(pairs, sign)
        if score is None:
            continue
        witness = worst_discordant_pair(
            stmt.quantity, [({stmt.quantity: x}, y) for x, y in pairs], sign
        )
        at = f"; worst counterexample: {witness.render()}" if witness else ""
        if score < 0.5:
            yield ctx.diag(
                "XR004",
                Severity.ERROR,
                f"the English interface claims {stmt.render()!r}, but the "
                f"program interface moves the *other* way over the bundle's "
                f"samples (concordance {score:.0%}{at})",
                hint="one of the two representations is wrong; fix whichever "
                "misstates the hardware",
            )
        elif score < 0.9:
            yield ctx.diag(
                "XR004",
                Severity.WARNING,
                f"the English interface claims {stmt.render()!r}, but the "
                f"program interface only weakly agrees over the bundle's "
                f"samples (concordance {score:.0%}{at})",
                hint="the claim may hold only on part of the workload space; "
                "consider qualifying the English statement",
            )


@rule("XR005", "cross", "Program and Petri-net representations diverge")
def check_representation_divergence(ctx: BundleLintContext) -> Iterator[Diagnostic]:
    b = ctx.bundle
    if b.program is None or b.petri_latency_fn is None or not b.samples:
        return
    rel_errors: list[float] = []
    for item in b.samples:
        try:
            prog = float(b.program.latency(item))
            petri = float(b.petri_latency_fn(item))
        except Exception:
            return  # the executable checks belong to the test suite
        if prog <= 0:
            continue
        rel_errors.append(abs(petri - prog) / prog)
    if not rel_errors:
        return
    worst = max(rel_errors)
    if worst > 0.5:
        yield ctx.diag(
            "XR005",
            Severity.WARNING,
            f"program and Petri-net latencies diverge by up to "
            f"{worst:.0%} over the bundle's samples",
            hint="the two representations model different hardware "
            "behavior; a consumer switching fidelity would see a jump",
        )


def lint_cross(
    bundle: InterfaceBundle,
    net: PetriNet | None = None,
    *,
    net_filename: str | None = None,
    registry=None,
) -> list[Diagnostic]:
    """Run every cross-family rule over an accelerator bundle."""
    from .registry import DEFAULT_REGISTRY

    ctx = BundleLintContext(bundle=bundle, net=net, net_filename=net_filename)
    return (registry or DEFAULT_REGISTRY).run_family("cross", ctx)
