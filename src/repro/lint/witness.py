"""Counterexample witnesses: the shared "here is the point" format.

A claim about a performance interface — "latency is non-decreasing in
message size" — is only actionable when its refutation names a concrete
point.  A :class:`Witness` is that point: two feature vectors and the
two predictions that move the wrong way between them.  Both the
cross-representation monotonicity check (``XR004``) and the static
verifier's certificates (:mod:`repro.lint.verify`) report
counterexamples in this one format, so a reader learns to read it once.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any


def _fmt(value: float) -> str:
    return f"{value:g}"


def _vec(point: Mapping[str, float]) -> str:
    inner = ", ".join(f"{k}={_fmt(float(v))}" for k, v in sorted(point.items()))
    return "{" + inner + "}"


@dataclass(frozen=True)
class Witness:
    """Two concrete evaluations that refute a monotonicity claim.

    ``point_a``/``point_b`` are feature vectors with ``point_b`` larger
    in the disputed feature; ``value_a``/``value_b`` are the model's
    predictions there.  The pair is a counterexample exactly because
    the predictions move against the claimed direction.
    """

    feature: str
    point_a: Mapping[str, float]
    point_b: Mapping[str, float]
    value_a: float
    value_b: float

    def render(self) -> str:
        return (
            f"at {_vec(self.point_a)} predicted {_fmt(self.value_a)}, "
            f"at {_vec(self.point_b)} predicted {_fmt(self.value_b)}"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "feature": self.feature,
            "point_a": {k: float(v) for k, v in self.point_a.items()},
            "point_b": {k: float(v) for k, v in self.point_b.items()},
            "value_a": self.value_a,
            "value_b": self.value_b,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> Witness:
        return cls(
            feature=data["feature"],
            point_a=dict(data["point_a"]),
            point_b=dict(data["point_b"]),
            value_a=float(data["value_a"]),
            value_b=float(data["value_b"]),
        )


def worst_discordant_pair(
    feature: str,
    pairs: list[tuple[Mapping[str, float], float]],
    sign: int,
) -> Witness | None:
    """The most egregious pair moving against ``sign`` over ``pairs``.

    ``pairs`` holds (feature vector, prediction) samples; the disputed
    feature must appear in every vector.  Returns the discordant pair
    with the largest prediction swing, or ``None`` when every pair
    agrees with the claimed direction.
    """
    worst: Witness | None = None
    worst_swing = 0.0
    for i in range(len(pairs)):
        for j in range(len(pairs)):
            (fa, ya), (fb, yb) = pairs[i], pairs[j]
            xa, xb = float(fa[feature]), float(fb[feature])
            if xb <= xa:
                continue
            if (yb - ya) * sign >= 0:
                continue
            swing = abs(yb - ya)
            if worst is None or swing > worst_swing:
                worst_swing = swing
                worst = Witness(
                    feature=feature, point_a=fa, point_b=fb, value_a=ya, value_b=yb
                )
    return worst
