"""Structured diagnostics for the performance-interface linter.

A performance interface is an artifact a *consumer* ingests and then
trusts — simulates against, provisions from, routes traffic by.  The
linter's job is to make that trust earned, and its currency is the
:class:`Diagnostic`: one finding, with a stable rule id, a severity, a
source location (pointing into the ``.pnet`` text or the Python module
that defines the interface), and a fix hint.  Everything renders both
as compiler-style text (``file:line:col: error[PL007] ...``) and as
JSON for downstream tools.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering matters (ERROR > WARNING > INFO)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> Severity:
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; expected one of "
                f"{[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding points: a file (or pseudo-file) plus line/col.

    ``file`` may be a real path, a module name, or ``None`` when the
    artifact was built programmatically and has no text to point into.
    """

    file: str | None = None
    line: int | None = None
    col: int | None = None

    def render(self) -> str:
        parts = [self.file or "<net>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        return ":".join(parts)


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    Attributes:
        rule_id: Stable identifier (``PL007``); the catalog in
            ``docs/perf-lint.md`` documents every id.
        severity: ERROR findings gate ingestion; WARNINGs deserve a
            look; INFOs describe structure.
        message: Human-readable statement of the problem.
        location: Source position the finding anchors to.
        subject: The net/transition/place/function the finding is about.
        hint: Actionable fix suggestion, when one exists.
    """

    rule_id: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    subject: str | None = None
    hint: str | None = None

    def render(self) -> str:
        text = (
            f"{self.location.render()}: {self.severity.label}"
            f"[{self.rule_id}] {self.message}"
        )
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "file": self.location.file,
            "line": self.location.line,
            "col": self.location.col,
            "subject": self.subject,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """An ordered collection of diagnostics with gating helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, more: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(more)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def rule_ids(self) -> set[str]:
        return {d.rule_id for d in self.diagnostics}

    def sorted(self) -> list[Diagnostic]:
        """Severity-major, then source order — stable for CLI output."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                -int(d.severity),
                d.location.file or "",
                d.location.line or 0,
                d.location.col or 0,
                d.rule_id,
            ),
        )

    def render(self, *, min_severity: Severity = Severity.INFO) -> str:
        return "\n".join(
            d.render() for d in self.sorted() if d.severity >= min_severity
        )

    def summary(self) -> str:
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        return f"{n_err} error(s), {n_warn} warning(s), {n_info} info"

    @property
    def exit_code(self) -> int:
        """Process exit code for CLI gates: nonzero iff errors exist."""
        return 1 if self.errors else 0
