"""An embedded time-series store for the observability plane.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "what is the
value *now*"; this module answers "what was it *then*" — without which
an SLO verdict, an autoscaler decision, or a drift arc cannot be
reconstructed after the fact.  :class:`TimeSeriesStore` is the smallest
store that earns that: fixed-size ring buffers per series (bounded
memory, oldest points retired first), multi-resolution downsampling
(count/sum/min/max per bucket at each configured resolution, so a long
run keeps coarse history after the raw ring wraps), a bounded event
log for instants (scale events, brownout transitions, heal
transitions), and the two queries operators actually run: rate over a
window and a quantile over time.

Timestamps are virtual cycles, same as every clock in the repo, so a
stored run is deterministic: same seeds, same workload ⇒ identical
series.  Feeding happens two ways:

* :meth:`pump` folds a full ``MetricsRegistry.snapshot()`` into the
  store (counters/gauges one point each; histograms as ``:count`` and
  ``:sum`` series), throttled by :meth:`maybe_pump` so the serving hot
  loop pays one float comparison per arrival when it is too early.
* :meth:`record` / :meth:`event` take direct samples and instants from
  the scale/heal/brownout layers.

Like :mod:`repro.obs.trace`, this module imports nothing from the rest
of the repo — it sits at the bottom of the dependency order so any
layer can write into it.
"""

from __future__ import annotations

from typing import Any

__all__ = ["TimeSeriesStore", "series_key"]


def series_key(name: str, labels: dict[str, Any] | None = None) -> str:
    """Render ``name`` + labels the way the metrics registry does
    (``name{a="1",b="x"}``), so pumped and recorded series line up."""
    if not labels:
        return name
    rendered = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class _Ring:
    """Fixed-capacity ring of ``(at, value)`` points, oldest evicted."""

    __slots__ = ("capacity", "_points", "_head", "total")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._points: list[tuple[float, float]] = []
        self._head = 0  # next write slot once full
        self.total = 0  # points ever written (retention accounting)

    def append(self, at: float, value: float) -> None:
        self.total += 1
        if len(self._points) < self.capacity:
            self._points.append((at, value))
        else:
            self._points[self._head] = (at, value)
            self._head = (self._head + 1) % self.capacity

    def items(self) -> list[tuple[float, float]]:
        """Points in time order (ring unrolled)."""
        if len(self._points) < self.capacity:
            return list(self._points)
        return self._points[self._head :] + self._points[: self._head]

    def __len__(self) -> int:
        return len(self._points)


class _Buckets:
    """One downsampling resolution: a ring of fixed-width buckets, each
    aggregating ``(count, sum, min, max)`` over ``width`` cycles."""

    __slots__ = ("width", "capacity", "_buckets")

    def __init__(self, width: float, capacity: int):
        self.width = width
        self.capacity = capacity
        # bucket index -> [count, sum, min, max]; insertion-ordered so
        # the oldest key is first (dicts preserve insertion order and
        # time only moves forward on the virtual clock).
        self._buckets: dict[int, list[float]] = {}

    def add(self, at: float, value: float) -> None:
        index = int(at // self.width)
        bucket = self._buckets.get(index)
        if bucket is None:
            if len(self._buckets) >= self.capacity:
                oldest = next(iter(self._buckets))
                del self._buckets[oldest]
            self._buckets[index] = [1.0, value, value, value]
        else:
            bucket[0] += 1.0
            bucket[1] += value
            if value < bucket[2]:
                bucket[2] = value
            if value > bucket[3]:
                bucket[3] = value

    def items(self) -> list[tuple[float, dict[str, float]]]:
        """``(bucket_start, {count, sum, min, max, mean})`` in time order."""
        out = []
        for index in sorted(self._buckets):
            count, total, lo, hi = self._buckets[index]
            out.append(
                (
                    index * self.width,
                    {
                        "count": count,
                        "sum": total,
                        "min": lo,
                        "max": hi,
                        "mean": total / count,
                    },
                )
            )
        return out


class _Series:
    __slots__ = ("name", "raw", "resolutions")

    def __init__(self, name: str, capacity: int, resolutions, bucket_capacity):
        self.name = name
        self.raw = _Ring(capacity)
        self.resolutions = tuple(
            _Buckets(width, bucket_capacity) for width in resolutions
        )

    def add(self, at: float, value: float) -> None:
        self.raw.append(at, value)
        for buckets in self.resolutions:
            buckets.add(at, value)


class TimeSeriesStore:
    """Bounded, zero-dependency, multi-resolution time-series storage.

    Args:
        capacity: raw points retained per series (ring buffer).
        resolutions: downsampling bucket widths in cycles, coarse
            history that survives after the raw ring wraps.
        bucket_capacity: buckets retained per resolution per series.
        event_capacity: instants retained in the event log.
        pump_interval: minimum cycles between :meth:`maybe_pump` folds
            of the metrics registry.
    """

    def __init__(
        self,
        *,
        capacity: int = 1024,
        resolutions: tuple[float, ...] = (1_000.0, 10_000.0),
        bucket_capacity: int = 512,
        event_capacity: int = 2048,
        pump_interval: float = 1_000.0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if any(w <= 0 for w in resolutions):
            raise ValueError(f"resolutions must be positive: {resolutions}")
        self.capacity = capacity
        self.resolutions = tuple(resolutions)
        self.bucket_capacity = bucket_capacity
        self.event_capacity = event_capacity
        self.pump_interval = pump_interval
        self.pumps = 0
        self.last_pump_at: float | None = None
        self.last_at: float | None = None
        self.dropped_events = 0
        self._series: dict[str, _Series] = {}
        self._events: list[tuple[float, str, dict[str, Any]]] = []

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record(self, name: str, at: float, value: float, **labels: Any) -> None:
        """Append one point to series ``name`` (labels rendered into the
        series key, metrics-registry style)."""
        key = series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(
                key, self.capacity, self.resolutions, self.bucket_capacity
            )
        series.add(at, float(value))
        if self.last_at is None or at > self.last_at:
            self.last_at = at

    def event(self, name: str, at: float, **fields: Any) -> None:
        """Append one instant (scale event, brownout transition, heal
        transition) to the bounded event log."""
        if len(self._events) >= self.event_capacity:
            self.dropped_events += 1
            return
        self._events.append((at, name, fields))
        if self.last_at is None or at > self.last_at:
            self.last_at = at

    def pump(self, metrics, at: float) -> int:
        """Fold one ``MetricsRegistry.snapshot()`` into the store.

        Counters and gauges become one point each; histograms become
        ``<name>:count`` and ``<name>:sum`` points (the bucket vector is
        already cumulative in the registry — re-storing it per pump
        would be all cost, no query).  Returns the number of points
        written."""
        if metrics is None:
            return 0
        written = 0
        for key, value in metrics.snapshot().items():
            if isinstance(value, dict):
                self.record(f"{key}:count", at, value["count"])
                self.record(f"{key}:sum", at, value["sum"])
                written += 2
            else:
                self.record(key, at, value)
                written += 1
        self.pumps += 1
        self.last_pump_at = at
        return written

    def maybe_pump(self, metrics, at: float) -> int:
        """Throttled :meth:`pump` — no-op unless ``pump_interval``
        cycles have passed since the last fold."""
        if (
            self.last_pump_at is not None
            and at - self.last_pump_at < self.pump_interval
        ):
            return 0
        return self.pump(metrics, at)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def series_names(self) -> list[str]:
        return sorted(self._series)

    def points(
        self,
        name: str,
        *,
        since: float | None = None,
        until: float | None = None,
    ) -> list[tuple[float, float]]:
        """Raw retained points for one series, time-ordered, optionally
        windowed to ``[since, until]`` inclusive."""
        series = self._series.get(name)
        if series is None:
            return []
        out = series.raw.items()
        if since is not None:
            out = [p for p in out if p[0] >= since]
        if until is not None:
            out = [p for p in out if p[0] <= until]
        return out

    def latest(self, name: str) -> tuple[float, float] | None:
        series = self._series.get(name)
        if series is None or len(series.raw) == 0:
            return None
        return series.raw.items()[-1]

    def rate(self, name: str, *, window: float | None = None) -> float | None:
        """Per-cycle rate of change over the retained window (for
        counter-shaped series: last-first over elapsed).  ``window``
        restricts to the trailing ``window`` cycles.  ``None`` until
        two points span nonzero time."""
        points = self.points(name)
        if window is not None and points:
            horizon = points[-1][0] - window
            points = [p for p in points if p[0] >= horizon]
        if len(points) < 2:
            return None
        (t0, v0), (t1, v1) = points[0], points[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def quantile_over_time(
        self, name: str, q: float, *, window: float | None = None
    ) -> float | None:
        """The ``q``-quantile of the retained raw values (gauge-shaped
        series), nearest-rank, optionally over the trailing window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        points = self.points(name)
        if window is not None and points:
            horizon = points[-1][0] - window
            points = [p for p in points if p[0] >= horizon]
        if not points:
            return None
        values = sorted(v for _, v in points)
        index = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
        return values[index]

    def downsampled(
        self, name: str, resolution: float
    ) -> list[tuple[float, dict[str, float]]]:
        """Bucketed aggregates at one configured resolution."""
        series = self._series.get(name)
        if series is None:
            return []
        for buckets in series.resolutions:
            if buckets.width == resolution:
                return buckets.items()
        raise ValueError(
            f"resolution {resolution} not configured (have {self.resolutions})"
        )

    def events(
        self,
        name_prefix: str | None = None,
        *,
        since: float | None = None,
        until: float | None = None,
    ) -> list[tuple[float, str, dict[str, Any]]]:
        """Logged instants in time order, optionally filtered by name
        prefix and window."""
        out = sorted(self._events, key=lambda e: e[0])
        if name_prefix is not None:
            out = [e for e in out if e[1].startswith(name_prefix)]
        if since is not None:
            out = [e for e in out if e[0] >= since]
        if until is not None:
            out = [e for e in out if e[0] <= until]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Freshness excerpt for pool snapshots and operator reports."""
        return {
            "series": len(self._series),
            "points": sum(s.raw.total for s in self._series.values()),
            "events": len(self._events),
            "dropped_events": self.dropped_events,
            "pumps": self.pumps,
            "last_pump_at": self.last_pump_at,
            "last_at": self.last_at,
        }
