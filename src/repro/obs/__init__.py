"""Perfscope: unified tracing, metrics, and drift observation.

The paper's promise is that a performance interface lets an operator
*predict* the hardware; this package is the matching ability to *watch*
it.  Three pieces, one bundle:

* :class:`~repro.obs.trace.Tracer` — spans on the virtual and wall
  clocks from every layer (Petri transition firings, DRAM accesses,
  device offloads/retries/breaker trips, admission-queue waits),
  exported as Chrome/Perfetto ``trace_event`` JSON.
* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters,
  gauges, and fixed-bucket histograms with a snapshot dict and text
  exposition.
* :class:`~repro.obs.drift.DriftObservatory` — rolling
  predicted-vs-observed relative-error quantiles per
  (device, rpc-class), feeding the runtime's drift detector.

:class:`Obs` carries the three together; instrumented constructors take
``obs=None`` (or a bare ``tracer=None`` at the lowest layers) and pay
nothing when not observed.  ``docs/observability.md`` is the operator
guide; ``python -m repro.tools.perfscope`` is the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

from .drift import (
    DEFAULT_SIZE_CLASSES,
    DriftObservatory,
    SizeClasses,
    rpc_size_class,
)
from .metrics import (
    DEFAULT_CYCLE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    watch_fifo,
)
from .attribution import (
    LatencyAttribution,
    Segment,
    attribute,
    attribute_records,
    score_mispredictions,
)
from .trace import Tracer, active
from .tsdb import TimeSeriesStore

__all__ = [
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_SIZE_CLASSES",
    "Counter",
    "DriftObservatory",
    "Gauge",
    "Histogram",
    "LatencyAttribution",
    "MetricsRegistry",
    "Obs",
    "Segment",
    "SizeClasses",
    "TimeSeriesStore",
    "Tracer",
    "active",
    "attribute",
    "attribute_records",
    "rpc_size_class",
    "score_mispredictions",
    "watch_fifo",
]


@dataclass
class Obs:
    """The observability bundle handed to instrumented constructors.

    Any field may be ``None`` — tracing, metrics, and the drift
    observatory opt in independently.  ``Obs()`` (all ``None``) is
    equivalent to not observing at all.
    """

    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    observatory: DriftObservatory | None = None
    tsdb: TimeSeriesStore | None = None

    @classmethod
    def enabled(
        cls,
        *,
        tracing: bool = True,
        metrics: bool = True,
        drift: bool = True,
        tsdb: bool = False,
        max_events: int = 1_000_000,
    ) -> Obs:
        """Build a fully wired bundle (the common case for benchmarks
        and the perfscope CLI).  ``tsdb`` opts into the embedded
        time-series store (off by default: the serving loop then pumps
        periodic metrics snapshots into it)."""
        registry = MetricsRegistry() if metrics else None
        return cls(
            tracer=Tracer(max_events=max_events) if tracing else None,
            metrics=registry,
            observatory=(
                DriftObservatory(metrics=registry) if drift else None
            ),
            tsdb=TimeSeriesStore() if tsdb else None,
        )

    def active_tracer(self) -> Tracer | None:
        """The tracer iff it exists and is enabled (hot-path guard)."""
        return active(self.tracer)
