"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The repo's subsystems each grew their own counters — ``CacheStats``
hit/miss, breaker transition lists, FIFO high-water marks, shed/drop
ledgers.  :class:`MetricsRegistry` gives them one schema: named
instruments with sorted label sets (Prometheus-style identity), a
:meth:`~MetricsRegistry.snapshot` dict for programmatic consumers, and
a text exposition for operators (``python -m repro.tools.perfscope
metrics``).

Naming conventions (see ``docs/observability.md``):

* ``snake_case`` metric names, suffixed ``_total`` for counters and
  ``_cycles``/``_seconds`` for histograms of durations;
* labels identify *which* — ``device``, ``accelerator``, ``policy``,
  ``path`` — never unbounded values (no request payloads, no
  timestamps).

Everything is process-local and lock-free: the repo's virtual-clock
simulations are single-threaded, and the process-pool sweeps aggregate
results (not metrics) across workers.

Like :mod:`repro.obs.trace`, this module imports nothing from the rest
of the repo, so every layer can bind to a registry without cycles.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable, Sequence
from typing import Any

#: Default buckets for virtual-cycle latency histograms: log-ish spacing
#: from "L1-hit cheap" to "watchdog territory".
DEFAULT_CYCLE_BUCKETS: tuple[float, ...] = (
    100.0,
    300.0,
    1_000.0,
    3_000.0,
    10_000.0,
    30_000.0,
    100_000.0,
    300_000.0,
    1_000_000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that goes both ways (queue depth, breaker state)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with cumulative-count exposition.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the rest.  ``observe`` costs one bisect + one increment.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th sample; ``inf`` when it lands in the
        overflow bucket).  Coarse by design — for accurate tails use a
        :class:`~repro.hw.stats.Reservoir`."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")

    def snapshot(self) -> dict[str, Any]:
        cumulative: dict[str, int] = {}
        running = 0
        for bound, c in zip(self.buckets, self.counts, strict=False):
            running += c
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = self.count
        return {"count": self.count, "sum": self.sum, "buckets": cumulative}


class MetricsRegistry:
    """Get-or-create registry of labeled instruments.

    A metric name belongs to exactly one instrument kind; asking for
    the same name with a different kind (or different histogram
    buckets) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._probes: list[Callable[[MetricsRegistry], None]] = []

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict[str, Any], make):
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ValueError(f"metric {name!r} is a {known}, not a {kind}")
        key = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = self._metrics[key] = make()
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, *, buckets: Sequence[float] | None = None, **labels: Any
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_CYCLE_BUCKETS
        hist = self._get("histogram", name, labels, lambda: Histogram(bounds))
        if hist.buckets != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return hist

    # ------------------------------------------------------------------
    # Probes: pull-style gauges sampled at snapshot time
    # ------------------------------------------------------------------
    def add_probe(self, probe: Callable[[MetricsRegistry], None]) -> None:
        """Register a callback run at every :meth:`snapshot`/
        :meth:`render_text` — the place to mirror externally owned state
        (FIFO depths, cache sizes) into gauges without polling."""
        self._probes.append(probe)

    def _run_probes(self) -> None:
        for probe in self._probes:
            probe(self)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """``{"name{label=\"v\"}": value-or-histogram-dict}``, sorted."""
        self._run_probes()
        out: dict[str, Any] = {}
        for (name, key), instrument in sorted(self._metrics.items()):
            series = f"{name}{_render_labels(key)}"
            if isinstance(instrument, Histogram):
                out[series] = instrument.snapshot()
            else:
                out[series] = instrument.value
        return out

    def render_text(self) -> str:
        """Prometheus-flavored text exposition (types + samples)."""
        self._run_probes()
        lines: list[str] = []
        by_name: dict[str, list[tuple[LabelKey, Any]]] = {}
        for (name, key), instrument in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append((key, instrument))
        for name, series in by_name.items():
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for key, instrument in series:
                labels = _render_labels(key)
                if isinstance(instrument, Histogram):
                    snap = instrument.snapshot()
                    for bound, cum in snap["buckets"].items():
                        le = _render_labels(key + (("le", bound),))
                        lines.append(f"{name}_bucket{le} {cum}")
                    lines.append(f"{name}_sum{labels} {snap['sum']:g}")
                    lines.append(f"{name}_count{labels} {snap['count']}")
                else:
                    lines.append(f"{name}{labels} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def watch_fifo(registry: MetricsRegistry, fifo) -> None:
    """Probe mirroring a :class:`~repro.hw.fifo.Fifo`'s occupancy stats
    into gauges (sampled at snapshot time, zero per-push cost)."""

    def probe(reg: MetricsRegistry) -> None:
        labels = {"fifo": fifo.name}
        reg.gauge("fifo_depth", **labels).set(len(fifo))
        reg.gauge("fifo_high_water", **labels).set(fifo.high_water)
        reg.gauge("fifo_pushes", **labels).set(fifo.pushes)
        reg.gauge("fifo_pops", **labels).set(fifo.pops)

    registry.add_probe(probe)
