"""Causal latency attribution: where did this request's cycles go?

The PR 5 decomposition (:class:`~repro.runtime.serving.RequestBreakdown`)
partitions a served request's end-to-end latency into four coarse
components.  This module refines it to *causal-path* granularity by
reading the Tracer's span record back: admission wait → device FIFO →
failed attempts → backoff → the successful attempt, with the successful
attempt itself split into memory stalls (fault-injected DRAM stall
windows plus the ground-truth model's ``hw.dram`` bursts), invocation
overhead, and residual compute.

The load-bearing invariant, property-tested in
``tests/obs/test_attribution.py`` and asserted over every request of
the E15 storm run: **segment cycles sum bit-exactly to the observed
end-to-end cycles** (``sum(s.cycles for s in a.segments) ==
a.end_to_end``, ``==`` on floats, no tolerance).  Exactness is what
makes the numbers trustworthy — a decomposition that "approximately"
adds up is hiding a stage.  The residual compute segment is placed last
and nudged (:func:`exact_residual`) so left-to-right float accumulation
lands on the total exactly.

:func:`score_mispredictions` then closes the paper's loop: it aligns
each observed attribution against the interface's *predicted* stage
decomposition (:meth:`~repro.core.petrinet.PetriNetInterface.predict_decomposition`)
and feeds per-(device, size-class, stage) errors into the
:class:`~repro.obs.drift.DriftObservatory`, giving the healing loop
stage-level refit hints and ``perfscope explain`` its
predicted-vs-observed table.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, NamedTuple

if TYPE_CHECKING:
    from repro.runtime.serving import ServeResult

__all__ = [
    "STAGES",
    "LatencyAttribution",
    "Segment",
    "attribute",
    "attribute_records",
    "exact_residual",
    "score_mispredictions",
]

#: The stage vocabulary segments are labeled with (shared with
#: ``predict_decomposition`` so predicted and observed stages align).
STAGES = ("queue", "retry", "memory", "overhead", "compute")


class Segment(NamedTuple):
    """One labeled slice of a request's end-to-end cycles."""

    name: str  # e.g. "admission_wait", "backoff", "memory"
    stage: str  # one of :data:`STAGES`
    cycles: float


class LatencyAttribution(NamedTuple):
    """One request's causal path, segments summing exactly end-to-end."""

    seq: int  # index into ``ServeResult.served``
    request: Any
    device: str
    path: str  # "accel", "cpu", or "failed"
    hedges: int
    arrival: float
    completed: float
    segments: tuple[Segment, ...]

    @property
    def end_to_end(self) -> float:
        return self.completed - self.arrival

    @property
    def total(self) -> float:
        """Left-to-right sum of the segments; bit-equal to
        :attr:`end_to_end` by construction."""
        return _fold(s.cycles for s in self.segments)

    def stages(self) -> dict[str, float]:
        """Cycles per stage label (segments folded)."""
        out: dict[str, float] = {}
        for s in self.segments:
            out[s.stage] = out.get(s.stage, 0.0) + s.cycles
        return out

    def segment(self, name: str) -> float:
        """Cycles of one named segment (0.0 when absent)."""
        for s in self.segments:
            if s.name == name:
                return s.cycles
        return 0.0


def _fold(values) -> float:
    """Left-to-right accumulation from 0.0 — the exact association
    order the invariant is defined over (same as builtin ``sum``)."""
    total = 0.0
    for v in values:
        total += v
    return total


def exact_residual(prefix: list[float], total: float) -> float:
    """The residual ``r`` such that folding ``prefix + [r]`` left to
    right yields *exactly* ``total``.

    ``total - fold(prefix)`` is only the first guess: float addition is
    not associative, so adding the guess back can land one ulp off.
    The nudge loop feeds the remaining gap back into the residual until
    the fold is bit-exact (converges in a couple of iterations for
    finite inputs; bounded so a pathological input cannot spin)."""
    residual = total - _fold(prefix)
    for _ in range(64):
        current = _fold(prefix) + residual
        if current == total:
            return residual
        residual += total - current
    return residual


def _build_segments(
    *,
    admission: float,
    device_queue: float,
    retry: float,
    backoff: float,
    memory: float,
    overhead: float,
    end_to_end: float,
) -> tuple[Segment, ...]:
    """Assemble the canonical segment list with the compute residual
    nudged so the fold is bit-exact."""
    prefix = [admission, device_queue, retry, backoff, memory, overhead]
    compute = exact_residual(prefix, end_to_end)
    return (
        Segment("admission_wait", "queue", admission),
        Segment("device_queue", "queue", device_queue),
        Segment("retry", "retry", retry),
        Segment("backoff", "retry", backoff),
        Segment("memory", "memory", memory),
        Segment("overhead", "overhead", overhead),
        Segment("compute", "compute", compute),
    )


def _span_streams(tracer) -> dict[str, dict[str, deque]]:
    """Per-category, per-tid FIFO queues of ``(start, end, args)``.

    Devices serve FIFO-sequentially on the virtual clock, so per-device
    emission order *is* serving order — which is what lets spans be
    matched to requests by popping instead of searching."""
    streams: dict[str, dict[str, deque]] = {
        "runtime.offload": {},
        "runtime.attempt": {},
        "runtime.backoff": {},
        "runtime.stall": {},
        "hw.dram": {},
    }
    for _name, start, end, cat, tid, args in tracer.span_events():
        bucket = streams.get(cat)
        if bucket is None:
            continue
        bucket.setdefault(tid, deque()).append((start, end, args or {}))
    return streams


def _pop_contained(stream: deque | None, start: float, end: float) -> list[tuple]:
    """Pop the leading spans of ``stream`` that fall inside
    ``[start, end]`` (FIFO: anything before the window was a previous
    request's and is discarded)."""
    out = []
    if stream is None:
        return out
    while stream and stream[0][0] < start - 1e-9:
        stream.popleft()  # earlier request's span nobody claimed
    while stream and stream[0][0] >= start - 1e-9 and stream[0][1] <= end + 1e-9:
        out.append(stream.popleft())
    return out


def _pop_one(stream: deque | None, start: float, end: float):
    """Pop the first span inside ``[start, end]``, or ``None``.  Used
    for offload spans, where one request owns exactly one span per hop
    — a wide request window must not swallow its successors'."""
    if stream is None:
        return None
    while stream and stream[0][0] < start - 1e-9:
        stream.popleft()
    if stream and stream[0][0] >= start - 1e-9 and stream[0][1] <= end + 1e-9:
        return stream.popleft()
    return None


def _dram_within(
    streams: dict[str, deque],
    start: float,
    end: float,
    tid: str | None = None,
) -> float:
    """Total ``hw.dram`` span cycles inside ``[start, end]``.

    With ``tid`` (the device model's dram trace tid), only that
    stream's spans count — concurrent devices' serving windows overlap
    on the shared virtual clock, so unscoped containment would charge
    one device's bursts to another's request.  Without a tid the match
    falls back to every stream; two same-model twins still share a tid
    there, so in the (rare) case their windows overlap a burst can land
    on the wrong twin — a second-order error the memory clamp bounds."""
    total = 0.0
    if tid is not None:
        selected = [streams[tid]] if tid in streams else []
    else:
        selected = list(streams.values())
    for stream in selected:
        for s, e, _args in stream:
            if s >= start - 1e-9 and e <= end + 1e-9:
                total += e - s
    return total


def _dram_tids(pool) -> dict[str, str]:
    """Map pool device names to their model's ``hw.dram`` trace tid
    (``f"{model.name}.dram"`` — see the accelerator models' ``_dram``
    constructors).  Devices whose models never touch DRAM map to a tid
    that simply never appears in the trace, which is the point: they
    must not absorb another device's bursts."""
    tids: dict[str, str] = {}
    for pooled in getattr(pool, "devices", []):
        model = getattr(getattr(pooled, "device", None), "model", None)
        name = getattr(model, "name", None)
        if name is not None:
            tids[pooled.name] = f"{name}.dram"
    return tids


def attribute(
    result: "ServeResult", tracer, pool=None
) -> list[LatencyAttribution]:
    """Reconstruct every served request's causal path from the trace.

    ``result`` must be the run the tracer watched, with the pool fresh
    at the start (span streams are matched to requests positionally —
    per-device FIFO order).  Requests whose spans are missing (tracer
    ``max_events`` overflow, tracing disabled) degrade gracefully to
    the coarse :class:`~repro.runtime.serving.RequestBreakdown`
    decomposition; the exact-sum invariant holds either way.

    Pass the serving ``pool`` when available: it scopes ``hw.dram``
    matching to each device's own model tid, so one device's memory
    bursts can never be charged to a concurrent request on another.
    """
    streams = (
        _span_streams(tracer)
        if tracer is not None and hasattr(tracer, "span_events")
        else {}
    )
    offloads = streams.get("runtime.offload", {})
    attempts = streams.get("runtime.attempt", {})
    backoffs = streams.get("runtime.backoff", {})
    stalls = streams.get("runtime.stall", {})
    dram = streams.get("hw.dram", {})
    dram_tids = _dram_tids(pool) if pool is not None else {}

    out: list[LatencyAttribution] = []
    for seq, (served, breakdown) in enumerate(
        zip(result.served, result.breakdowns)
    ):
        backoff_sum = 0.0
        memory = 0.0
        overhead = 0.0
        for device_name in served.devices_tried:
            window = _pop_one(
                offloads.get(device_name), breakdown.arrival, served.completed
            )
            if window is None:
                continue  # spans dropped: coarse fallback for this hop
            o_start, o_end, _o_args = window
            hop_attempts = _pop_contained(attempts.get(device_name), o_start, o_end)
            for _s, _e, _args in _pop_contained(
                backoffs.get(device_name), o_start, o_end
            ):
                backoff_sum += _e - _s
            hop_stall = _fold(
                e - s
                for s, e, _a in _pop_contained(stalls.get(device_name), o_start, o_end)
            )
            success = next(
                (a for a in hop_attempts if a[2].get("ok")), None
            )
            if success is not None:
                a_start, a_end, a_args = success
                observed = a_args.get("observed")
                if observed is None:
                    observed = a_end - a_start
                overhead = max(0.0, (a_end - a_start) - observed)
                memory = min(
                    hop_stall
                    + _dram_within(
                        dram,
                        a_start,
                        a_start + observed,
                        dram_tids.get(device_name) if dram_tids else None,
                    ),
                    observed,
                )
        retry = max(0.0, breakdown.retry - backoff_sum)
        out.append(
            LatencyAttribution(
                seq=seq,
                request=served.request,
                device=served.device,
                path=served.path,
                hedges=served.hedges,
                arrival=breakdown.arrival,
                completed=served.completed,
                segments=_build_segments(
                    admission=breakdown.queue_wait,
                    device_queue=breakdown.device_queue,
                    retry=retry,
                    backoff=backoff_sum,
                    memory=memory,
                    overhead=overhead,
                    end_to_end=breakdown.end_to_end,
                ),
            )
        )
    return out


def score_mispredictions(
    attributions: list[LatencyAttribution],
    pool,
    observatory,
) -> list[dict[str, Any]]:
    """Align observed attributions with predicted stage decompositions.

    For every accelerator-served request whose pricing interface can
    :meth:`~repro.core.petrinet.PetriNetInterface.predict_decomposition`,
    compare predicted vs observed cycles for the ``memory`` and
    ``compute`` stages and feed the errors into
    ``observatory.observe_stage`` (per device × size-class × stage).
    Returns one comparison dict per scored request, aligned with the
    scored subset of ``attributions`` — the raw material for
    ``perfscope explain``'s predicted-vs-observed table.
    """
    comparisons: list[dict[str, Any]] = []
    decomposers: dict[str, Any] = {}
    for pooled in getattr(pool, "devices", []):
        fn = getattr(pooled.price_interface, "predict_decomposition", None)
        if fn is not None:
            decomposers[pooled.name] = fn
    for attr in attributions:
        decompose = decomposers.get(attr.device)
        if decompose is None or attr.path != "accel":
            continue
        decomp = decompose(attr.request)
        predicted_memory = decomp.stages.get("memory", 0.0)
        predicted_compute = decomp.total - predicted_memory
        stages = attr.stages()
        observed_memory = stages.get("memory", 0.0)
        observed_compute = stages.get("compute", 0.0)
        rpc_class = (
            observatory.classifier(attr.request)
            if observatory is not None
            else type(attr.request).__name__
        )
        if observatory is not None:
            observatory.observe_stage(
                attr.device,
                rpc_class,
                "memory",
                predicted_memory,
                observed_memory,
                at=attr.completed,
            )
            observatory.observe_stage(
                attr.device,
                rpc_class,
                "compute",
                predicted_compute,
                observed_compute,
                at=attr.completed,
            )
        comparisons.append(
            {
                "seq": attr.seq,
                "device": attr.device,
                "rpc_class": rpc_class,
                "end_to_end": attr.end_to_end,
                "predicted": {
                    "memory": predicted_memory,
                    "compute": predicted_compute,
                    "total": decomp.total,
                },
                "observed": {
                    "memory": observed_memory,
                    "compute": observed_compute,
                    "total": attr.end_to_end,
                },
            }
        )
    return comparisons


def attribute_records(
    records,
    *,
    interface=None,
    classes=None,
) -> list[LatencyAttribution]:
    """Offline attribution of a device tape (no live pool, no tracer).

    Each :class:`~repro.runtime.device.CallRecord` splits into retry
    (``cycles - service_cycles``) and service; service further splits
    into memory vs compute by comparing against a per-class baseline —
    the interface's prediction when ``interface`` is given, else the
    median service of the record's *fault-free* class peers.  Records
    carrying DRAM-flavored faults (refresh storms, latency spikes)
    attribute their excess-over-baseline service to the memory stage.
    The exact-sum invariant holds per record, same as the live path.
    """
    from repro.runtime.faults import FaultKind

    if classes is None:
        from repro.obs.drift import DEFAULT_SIZE_CLASSES

        classes = DEFAULT_SIZE_CLASSES
    classify = classes.classify if hasattr(classes, "classify") else classes

    dram_kinds = {FaultKind.REFRESH_STORM, FaultKind.LATENCY_SPIKE}
    baselines: dict[str, float] = {}
    if interface is None:
        clean: dict[str, list[float]] = {}
        for r in records:
            if r.path == "accel" and not r.faults and r.service_cycles > 0:
                clean.setdefault(classify(r.request), []).append(r.service_cycles)
        for label, values in clean.items():
            values.sort()
            baselines[label] = values[len(values) // 2]

    out: list[LatencyAttribution] = []
    for seq, r in enumerate(records):
        service = r.service_cycles
        memory = 0.0
        if (
            r.path == "accel"
            and service > 0
            and any(k in dram_kinds for k in r.faults)
        ):
            label = classify(r.request)
            if interface is not None:
                baseline = interface.latency(r.request)
            else:
                baseline = baselines.get(label, service)
            memory = min(max(0.0, service - baseline), service)
        retry = max(0.0, r.cycles - service)
        out.append(
            LatencyAttribution(
                seq=seq,
                request=r.request,
                device="",
                path=r.path,
                hedges=0,
                arrival=0.0,
                completed=r.cycles,
                segments=_build_segments(
                    admission=0.0,
                    device_queue=0.0,
                    retry=retry,
                    backoff=0.0,
                    memory=memory,
                    overhead=0.0,
                    end_to_end=r.cycles,
                ),
            )
        )
    return out
