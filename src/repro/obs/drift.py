"""The drift observatory: rolling predicted-vs-observed reconciliation.

A performance interface earns trust by *continuously* matching the
hardware, not by passing one offline validation.  The observatory is
the live half of that loop: every successful pool offload reports
``(device, request, predicted, observed)`` here, and per
``(device, rpc-class)`` key it maintains

* a seeded :class:`~repro.hw.stats.Reservoir` of relative errors
  (accurate quantiles in bounded memory),
* window-folded :class:`~repro.hw.stats.Summary` aggregates
  (:meth:`~repro.hw.stats.Summary.merge` over fixed-size chunks, so
  mean/min/max stay exact over millions of calls), and
* a :class:`~repro.runtime.degrade.DriftDetector` whose verdict feeds
  back to the caller (a drifting class is the operator's cue that the
  interface no longer describes the hardware).

``python -m repro.tools.perfscope report`` renders :meth:`DriftObservatory.report`
after a serving scenario; the E15 benchmark appends it to its output.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.hw.stats import Reservoir, Summary, relative_error


@dataclass(frozen=True)
class SizeClasses:
    """Configurable wire-size bucketing for RPC requests.

    One spec is shared by every layer that labels traffic — the
    :class:`DriftObservatory`, the healing loop's refit keys
    (:mod:`repro.heal`), and tape windowing
    (:func:`repro.runtime.tape.tape_stats`) — so a request can never be
    "medium" to the observatory but "large" to the refitter.

    ``boundaries`` maps each label to its *inclusive* upper bound in
    encoded bytes, in ascending order; anything above the last bound is
    ``overflow``.  Requests without an ``encoded_size()`` method are
    labeled by their type name (they have no wire size to bucket).
    """

    boundaries: tuple[tuple[str, int], ...] = (("small", 96), ("medium", 1024))
    overflow: str = "large"

    def __post_init__(self) -> None:
        bounds = [b for _, b in self.boundaries]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bounds must be strictly ascending: {bounds}")
        labels = [label for label, _ in self.boundaries] + [self.overflow]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate class labels: {labels}")

    @property
    def labels(self) -> tuple[str, ...]:
        """Every label this spec can produce for sized requests."""
        return tuple(label for label, _ in self.boundaries) + (self.overflow,)

    def classify(self, request: Any) -> str:
        """Label one request by encoded wire size (else its type name)."""
        sizer = getattr(request, "encoded_size", None)
        if not callable(sizer):
            return type(request).__name__
        size = sizer()
        for label, bound in self.boundaries:
            if size <= bound:
                return label
        return self.overflow


#: The stock spec (the bucket boundaries formerly hardcoded here).
DEFAULT_SIZE_CLASSES = SizeClasses()


def rpc_size_class(request: Any) -> str:
    """Default request classifier: :data:`DEFAULT_SIZE_CLASSES` buckets
    for RPC messages (anything exposing ``encoded_size()``), else the
    type name."""
    return DEFAULT_SIZE_CLASSES.classify(request)


class _StageState:
    """Per-(device, rpc-class, stage) predicted-vs-observed aggregate."""

    __slots__ = ("samples", "err_sum", "pred_sum", "obs_sum", "last_at")

    def __init__(self):
        self.samples = 0
        self.err_sum = 0.0
        self.pred_sum = 0.0
        self.obs_sum = 0.0
        self.last_at = 0.0

    @property
    def err_mean(self) -> float:
        return self.err_sum / self.samples if self.samples else 0.0


def _symmetric_error(predicted: float, observed: float) -> float:
    """|p - o| / max(|p|, |o|) — bounded to [0, 1], so a stage the
    interface predicts as zero (e.g. no modeled memory stalls) scores
    1.0 against any observed cycles instead of blowing up to inf."""
    denom = max(abs(predicted), abs(observed))
    if denom == 0.0:
        return 0.0
    return abs(predicted - observed) / denom


class _KeyState:
    """Per-(device, rpc-class) rolling state."""

    __slots__ = (
        "samples",
        "errors",
        "chunk",
        "merged",
        "detector",
        "drifting",
        "last_at",
    )

    def __init__(self, reservoir_capacity: int, seed: int, detector):
        self.samples = 0
        self.errors = Reservoir(reservoir_capacity, seed=seed)
        self.chunk: list[float] = []
        self.merged: Summary | None = None
        self.detector = detector
        self.drifting = False
        self.last_at = 0.0


class DriftObservatory:
    """Per-(device, rpc-class) predicted-vs-observed error tracking.

    Args:
        classifier: maps a request to its rpc-class label — either a
            :class:`SizeClasses` spec (preferred: downstream consumers
            like :mod:`repro.heal` can then read
            :attr:`size_classes` and are guaranteed to agree on
            labels) or a bare callable.  Defaults to
            :data:`DEFAULT_SIZE_CLASSES`.
        window: chunk size for :meth:`~repro.hw.stats.Summary.merge`
            folding — errors are summarized per ``window`` samples and
            folded, so memory stays O(window + reservoir) per key.
        reservoir_capacity: per-key error sample size.
        detector_factory: builds the per-key
            :class:`~repro.runtime.degrade.DriftDetector`; ``None``
            uses its defaults.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving ``obs_drift_samples_total`` and
            ``obs_drift_score`` per key.
    """

    def __init__(
        self,
        *,
        classifier: SizeClasses | Callable[[Any], str] | None = None,
        window: int = 64,
        reservoir_capacity: int = 256,
        seed: int = 0,
        detector_factory: Callable[[], Any] | None = None,
        metrics=None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if classifier is None:
            classifier = DEFAULT_SIZE_CLASSES
        if isinstance(classifier, SizeClasses):
            #: The shared bucketing spec, when the classifier is one
            #: (``None`` for a bare callable).
            self.size_classes: SizeClasses | None = classifier
            self.classifier: Callable[[Any], str] = classifier.classify
        else:
            self.size_classes = None
            self.classifier = classifier
        self.window = window
        self.reservoir_capacity = reservoir_capacity
        self.seed = seed
        self._detector_factory = detector_factory
        self.metrics = metrics
        self._keys: dict[tuple[str, str], _KeyState] = {}
        self._stages: dict[tuple[str, str, str], _StageState] = {}
        self._subscribers: list[Callable[..., None]] = []

    # ------------------------------------------------------------------
    def _make_detector(self):
        if self._detector_factory is not None:
            return self._detector_factory()
        # Imported lazily: repro.runtime.device feeds this observatory,
        # so a module-level import would be a cycle.
        from repro.runtime.degrade import DriftDetector

        return DriftDetector()

    def _state(self, key: tuple[str, str]) -> _KeyState:
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyState(
                self.reservoir_capacity,
                self.seed + len(self._keys),
                self._make_detector(),
            )
        return state

    def subscribe(self, fn: Callable[..., None]) -> None:
        """Register a live consumer of every observation.

        ``fn`` is called after each :meth:`observe` fold as
        ``fn(device, rpc_class, request, predicted, observed,
        drifting=..., at=...)`` — this is how the self-healing loop
        (:class:`repro.heal.HealingManager`) hears drift verdicts the
        moment they happen instead of polling snapshots."""
        self._subscribers.append(fn)

    def observe(
        self,
        device: str,
        request: Any,
        predicted: float,
        observed: float,
        *,
        at: float = 0.0,
    ) -> bool:
        """Fold one successful call; returns True when this key's
        detector currently reports drift."""
        key = (device, self.classifier(request))
        state = self._state(key)
        err = relative_error(predicted, observed)
        state.samples += 1
        state.last_at = at
        state.errors.add(err)
        state.chunk.append(err)
        if len(state.chunk) >= self.window:
            folded = Summary.of(state.chunk)
            state.merged = (
                folded
                if state.merged is None
                else Summary.merge(state.merged, folded)
            )
            state.chunk.clear()
        state.drifting = bool(state.detector.update(predicted, observed))
        if self.metrics is not None:
            device_label, rpc_class = key
            self.metrics.counter(
                "obs_drift_samples_total", device=device_label, rpc_class=rpc_class
            ).inc()
            score = state.detector.last_score
            if score is not None:
                self.metrics.gauge(
                    "obs_drift_score", device=device_label, rpc_class=rpc_class
                ).set(score)
        for fn in self._subscribers:
            fn(
                key[0],
                key[1],
                request,
                predicted,
                observed,
                drifting=state.drifting,
                at=at,
            )
        return state.drifting

    # ------------------------------------------------------------------
    # Stage-level misprediction tracking (fed by
    # :func:`repro.obs.attribution.score_mispredictions`)
    # ------------------------------------------------------------------
    def observe_stage(
        self,
        device: str,
        rpc_class: str,
        stage: str,
        predicted: float,
        observed: float,
        *,
        at: float = 0.0,
    ) -> None:
        """Fold one per-stage (predicted, observed) pair — the causal
        refinement of :meth:`observe`: not just *that* the interface
        mispredicted, but *which stage* of the path it mispredicted."""
        key = (device, rpc_class, stage)
        state = self._stages.get(key)
        if state is None:
            state = self._stages[key] = _StageState()
        state.samples += 1
        state.err_sum += _symmetric_error(predicted, observed)
        state.pred_sum += predicted
        state.obs_sum += observed
        state.last_at = at
        if self.metrics is not None:
            self.metrics.counter(
                "obs_stage_samples_total",
                device=device,
                rpc_class=rpc_class,
                stage=stage,
            ).inc()
            self.metrics.gauge(
                "obs_stage_err",
                device=device,
                rpc_class=rpc_class,
                stage=stage,
            ).set(state.err_mean)

    def top_mispredicted_stage(
        self, device: str, rpc_class: str | None = None
    ) -> tuple[str, float] | None:
        """The stage with the worst mean symmetric error for one device
        (optionally narrowed to one rpc-class): ``(stage, err_mean)``,
        or ``None`` before any stage sample.  This is the refit hint
        the healing loop attaches to its candidates and the headline of
        ``DevicePool.snapshot()['attribution']``."""
        best: tuple[str, float] | None = None
        for (dev, cls, stage), state in self._stages.items():
            if dev != device or state.samples == 0:
                continue
            if rpc_class is not None and cls != rpc_class:
                continue
            if best is None or state.err_mean > best[1]:
                best = (stage, state.err_mean)
        return best

    def stage_snapshot(self) -> dict[str, Any]:
        """Programmatic view, one entry per (device, rpc-class, stage)."""
        out: dict[str, Any] = {}
        for (device, rpc_class, stage), state in sorted(self._stages.items()):
            out[f"{device}/{rpc_class}/{stage}"] = {
                "samples": state.samples,
                "err_mean": state.err_mean,
                "predicted_mean": state.pred_sum / state.samples,
                "observed_mean": state.obs_sum / state.samples,
                "last_at": state.last_at,
            }
        return out

    def stage_report(self) -> str:
        """Operator-facing table: one row per (device, rpc-class, stage)."""
        if not self._stages:
            return "stage attribution: no samples"
        lines = [
            f"{'device':14}  {'class':8}  {'stage':8}  {'n':>6}  "
            f"{'pred mean':>10}  {'obs mean':>10}  {'err':>7}"
        ]
        for (device, rpc_class, stage), state in sorted(self._stages.items()):
            lines.append(
                f"{device:14}  {rpc_class:8}  {stage:8}  {state.samples:6d}  "
                f"{state.pred_sum / state.samples:10.0f}  "
                f"{state.obs_sum / state.samples:10.0f}  "
                f"{state.err_mean:7.1%}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> list[tuple[str, str]]:
        return sorted(self._keys)

    def samples(self, device: str, rpc_class: str) -> int:
        state = self._keys.get((device, rpc_class))
        return state.samples if state is not None else 0

    def error_summary(self, device: str, rpc_class: str) -> Summary | None:
        """Folded relative-error summary for one key (``None`` until a
        sample arrives).  Mean/min/max are exact; quantiles are the
        documented merge approximation — see :meth:`error_quantiles`
        for the reservoir's accurate tails."""
        state = self._keys.get((device, rpc_class))
        if state is None or state.samples == 0:
            return None
        parts = []
        if state.merged is not None:
            parts.append(state.merged)
        if state.chunk:
            parts.append(Summary.of(state.chunk))
        return Summary.merge(*parts)

    def error_quantiles(self, device: str, rpc_class: str) -> Summary | None:
        """Reservoir-sampled error summary (accurate quantiles over a
        uniform sample of the whole stream)."""
        state = self._keys.get((device, rpc_class))
        if state is None or len(state.errors) == 0:
            return None
        return state.errors.summary()

    def drifting_keys(self) -> list[tuple[str, str]]:
        return sorted(k for k, s in self._keys.items() if s.drifting)

    def detector(self, device: str, rpc_class: str):
        """The per-key drift detector (``None`` before the first
        sample) — consumers read its ``threshold``/``last_score``."""
        state = self._keys.get((device, rpc_class))
        return state.detector if state is not None else None

    def reset_detector(self, device: str, rpc_class: str) -> None:
        """Forget one key's drift *window* (samples and folded error
        history are kept).  Called by the healing loop after a hot-swap:
        the old window scored the old interface, and carrying it over
        would keep flagging drift the new interface no longer has."""
        state = self._keys.get((device, rpc_class))
        if state is None:
            return
        state.detector.reset()
        state.drifting = False

    def snapshot(self) -> dict[str, Any]:
        """Programmatic view, one entry per (device, rpc-class)."""
        out: dict[str, Any] = {}
        for (device, rpc_class), state in sorted(self._keys.items()):
            quant = self.error_quantiles(device, rpc_class)
            out[f"{device}/{rpc_class}"] = {
                "samples": state.samples,
                "drifting": state.drifting,
                "score": state.detector.last_score,
                "threshold": state.detector.threshold,
                "err_mean": self.error_summary(device, rpc_class).mean,
                "err_p50": quant.p50 if quant else None,
                "err_p95": quant.p95 if quant else None,
                "err_p99": quant.p99 if quant else None,
                "last_at": state.last_at,
            }
        return out

    def report(self) -> str:
        """Operator-facing table: one row per (device, rpc-class)."""
        if not self._keys:
            return "drift observatory: no samples"
        lines = [
            f"{'device':14}  {'class':8}  {'n':>6}  {'err mean':>8}  "
            f"{'p50':>7}  {'p95':>7}  {'p99':>7}  {'score':>7}  status"
        ]
        for (device, rpc_class), state in sorted(self._keys.items()):
            summary = self.error_summary(device, rpc_class)
            quant = self.error_quantiles(device, rpc_class)
            score = state.detector.last_score
            lines.append(
                f"{device:14}  {rpc_class:8}  {state.samples:6d}  "
                f"{summary.mean:8.1%}  "
                f"{quant.p50:7.1%}  {quant.p95:7.1%}  {quant.p99:7.1%}  "
                + (f"{score:7.1%}  " if score is not None else f"{'-':>7}  ")
                + ("DRIFTING" if state.drifting else "ok")
            )
        return "\n".join(lines)
