"""Zero-dependency tracing: spans on the virtual clock and the wall clock.

The repo runs everything on deterministic *virtual* clocks (cycles), so
a trace of a simulation or a pool run is itself deterministic: same
seeds, same workload ⇒ byte-identical span lists.  :class:`Tracer`
collects those spans with near-zero overhead (one list append per
event) and exports them as Chrome/Perfetto ``trace_event`` JSON via
:meth:`Tracer.export_chrome_trace`, so a fault-storm serving run can be
opened in ``chrome://tracing`` or https://ui.perfetto.dev.

Two clocks, two trace processes:

* **virtual** — timestamps are simulation cycles (rendered as µs in the
  viewer; 1 cycle = 1 µs of display time).  Petri transition firings,
  DRAM accesses, device offloads, and queue waits live here.
* **wall** — timestamps are real microseconds since the tracer was
  created.  Host-side work (sweep maps, compile steps) lives here via
  :meth:`Tracer.wall_span`.

Pay-for-what-you-use: instrumented code takes ``tracer=None`` and
guards each emission with ``if tracer is not None`` — no tracer, no
work.  A constructed-but-disabled tracer (``Tracer(enabled=False)``)
drops events at the first branch, so it can be threaded everywhere and
switched centrally.

This module imports nothing from the rest of the repo — it sits below
``hw``, ``petri``, and ``runtime`` in the dependency order, which is
what lets all three layers emit into one timeline.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

#: Trace-process ids in the exported file (Chrome groups rows by pid).
VIRTUAL_PID = 1
WALL_PID = 2

# Event record layout (plain tuples; a dataclass per span would double
# the tracing cost): (ph, name, cat, ts, dur, tid, wall, args)
_SPAN, _INSTANT, _COUNTER = "X", "i", "C"


class Tracer:
    """Collects spans/instants/counters; exports Chrome ``trace_event`` JSON.

    Args:
        enabled: a disabled tracer accepts every call and records
            nothing — the switch for "instrument everywhere, pay
            nowhere".
        max_events: hard cap on retained events; beyond it new events
            are counted in :attr:`dropped` instead of stored, so a
            runaway sweep cannot eat the host's memory.
    """

    __slots__ = ("enabled", "max_events", "dropped", "_events", "_wall0")

    def __init__(self, *, enabled: bool = True, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        self._events: list[tuple] = []
        self._wall0 = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        cat: str = "",
        tid: str = "main",
        args: dict[str, Any] | None = None,
    ) -> None:
        """One complete span on the virtual clock (cycles)."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append((_SPAN, name, cat, start, end - start, tid, False, args))

    def instant(
        self,
        name: str,
        at: float,
        *,
        cat: str = "",
        tid: str = "main",
        args: dict[str, Any] | None = None,
    ) -> None:
        """A zero-duration marker on the virtual clock (breaker trips,
        sheds, drops)."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append((_INSTANT, name, cat, at, 0.0, tid, False, args))

    def counter(
        self, name: str, at: float, value: float, *, tid: str = "main"
    ) -> None:
        """A counter sample (rendered as a stacked area track)."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(
            (_COUNTER, name, "", at, 0.0, tid, False, {"value": value})
        )

    @contextmanager
    def wall_span(
        self,
        name: str,
        *,
        cat: str = "",
        tid: str = "host",
        args: dict[str, Any] | None = None,
    ):
        """Context manager timing a host-side block on the wall clock."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            if len(self._events) >= self.max_events:
                self.dropped += 1
            else:
                start_us = (t0 - self._wall0) / 1_000.0
                dur_us = (time.perf_counter_ns() - t0) / 1_000.0
                self._events.append(
                    (_SPAN, name, cat, start_us, dur_us, tid, True, args)
                )

    # ------------------------------------------------------------------
    # Introspection (tests, the differential harness, perfscope)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def categories(self) -> set[str]:
        return {e[2] for e in self._events if e[2]}

    def spans(self, cat_prefix: str | None = None) -> list[tuple]:
        """Span tuples ``(name, start, end, cat, tid)`` in emission order.

        ``cat_prefix`` filters by category (``"petri"`` matches
        ``"petri.fire"`` and ``"petri.timeout"``).  Deterministic given
        deterministic instrumentation, so two engines tracing the same
        run can be compared span-for-span.
        """
        out = []
        for ph, name, cat, ts, dur, tid, _wall, _args in self._events:
            if ph != _SPAN:
                continue
            if cat_prefix is not None and not cat.startswith(cat_prefix):
                continue
            out.append((name, ts, ts + dur, cat, tid))
        return out

    def span_events(self, cat_prefix: str | None = None) -> list[tuple]:
        """Like :meth:`spans` but args-including:
        ``(name, start, end, cat, tid, args)`` in emission order.

        The attribution layer (:mod:`repro.obs.attribution`) needs the
        per-span payload (attempt outcome, observed latency, fault
        kind) that :meth:`spans` — kept stable for the differential
        harness — drops.
        """
        out = []
        for ph, name, cat, ts, dur, tid, _wall, args in self._events:
            if ph != _SPAN:
                continue
            if cat_prefix is not None and not cat.startswith(cat_prefix):
                continue
            out.append((name, ts, ts + dur, cat, tid, args))
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_chrome_trace(self, path: str | Path | None = None) -> dict | Path:
        """Render the Chrome/Perfetto ``trace_event`` document.

        Returns the document dict, or — when ``path`` is given — writes
        it there as JSON and returns the path.  Virtual-clock events
        land in one trace process, wall-clock events in another, with
        named threads per ``tid``.
        """
        events: list[dict[str, Any]] = []
        tids: dict[tuple[int, str], int] = {}

        def tid_for(pid: int, tid: str) -> int:
            key = (pid, tid)
            if key not in tids:
                tids[key] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": len(tids),
                        "args": {"name": tid},
                    }
                )
            return tids[key]

        for pid, label in (
            (VIRTUAL_PID, "virtual clock (cycles)"),
            (WALL_PID, "wall clock"),
        ):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )

        for ph, name, cat, ts, dur, tid, wall, args in self._events:
            pid = WALL_PID if wall else VIRTUAL_PID
            event: dict[str, Any] = {
                "ph": ph,
                "name": name,
                "pid": pid,
                "tid": tid_for(pid, tid),
                "ts": ts,
            }
            if cat:
                event["cat"] = cat
            if ph == _SPAN:
                event["dur"] = dur
            elif ph == _INSTANT:
                event["s"] = "t"
            if args:
                event["args"] = args
            events.append(event)

        document = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {"dropped_events": self.dropped},
        }
        if path is None:
            return document
        path = Path(path)
        path.write_text(json.dumps(document))
        return path


def active(tracer: Tracer | None) -> Tracer | None:
    """Normalize "no tracing": returns ``tracer`` only when it exists
    and is enabled, else ``None`` — so hot loops test one local against
    ``None`` instead of two attributes per event."""
    if tracer is not None and tracer.enabled:
        return tracer
    return None
