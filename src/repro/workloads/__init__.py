"""Workload generators, re-exported under one roof.

Each accelerator package owns its generator (images, message formats,
VTA programs); this package aggregates them and adds the cross-cutting
RPC mixes used by the selection scenarios.
"""

from repro.accel.jpeg.workload import JpegImage, random_image, random_images
from repro.accel.protoacc.formats import build, format_names, instances
from repro.accel.vta.workload import (
    GemmWorkload,
    Tiling,
    legal_tilings,
    random_program,
    random_programs,
    tiled_gemm_program,
)

from .rpc import (
    ALL_MIXES,
    ANALYTICS_MIX,
    ENTERPRISE_MIX,
    STORAGE_MIX,
    RpcMix,
    sized_message,
)

__all__ = [
    "ALL_MIXES",
    "ANALYTICS_MIX",
    "ENTERPRISE_MIX",
    "STORAGE_MIX",
    "GemmWorkload",
    "JpegImage",
    "RpcMix",
    "Tiling",
    "build",
    "format_names",
    "instances",
    "legal_tilings",
    "random_image",
    "random_images",
    "random_program",
    "random_programs",
    "sized_message",
    "tiled_gemm_program",
]
