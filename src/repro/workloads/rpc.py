"""RPC workload mixes for the infrastructure-stack scenario (example #2).

An enterprise RPC stack does not serialize one message shape; it sees a
*mix*.  The mixes here are size/shape distributions that generate
concrete :class:`~repro.accel.protoacc.Message` instances, used by the
crossover benchmark (E7) and the selection examples.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.accel.protoacc.message import Field, FieldKind, Message


def sized_message(size: int, rng: np.random.Generator, *, nested: bool = False) -> Message:
    """A message whose payload is roughly ``size`` bytes: a couple of
    scalar header fields plus one blob (optionally behind a submessage)."""
    blob = Field(3, FieldKind.BYTES, rng.bytes(max(1, size)))
    header = [
        Field(1, FieldKind.VARINT, int(rng.integers(0, 1 << 32))),
        Field(2, FieldKind.VARINT, int(rng.integers(0, 1 << 16))),
    ]
    if nested:
        inner = Message(tuple(header + [blob]), schema_name="payload")
        return Message(
            (Field(1, FieldKind.MESSAGE, inner),), schema_name=f"rpc_{size}B_nested"
        )
    return Message(tuple(header + [blob]), schema_name=f"rpc_{size}B")


@dataclass(frozen=True)
class RpcMix:
    """A named distribution over message sizes/shapes."""

    name: str
    sampler: Callable[[np.random.Generator], Message]

    def sample(self, seed: int, count: int) -> list[Message]:
        rng = np.random.default_rng(seed)
        return [self.sampler(rng) for _ in range(count)]

    def sample_open(
        self, seed: int, count: int, mean_gap: float
    ) -> tuple[list[Message], list[float]]:
        """Sample ``count`` messages plus Poisson arrival offsets with the
        given mean inter-arrival gap (cycles) — the open-loop form the
        serving-runtime benchmarks drive, where tail latency depends on
        when requests land, not just what they are."""
        if mean_gap <= 0:
            raise ValueError("mean_gap must be positive")
        msgs = self.sample(seed, count)
        rng = np.random.default_rng((seed, 0xA5))
        arrivals = np.cumsum(rng.exponential(mean_gap, size=count))
        return msgs, [float(a) for a in arrivals]


def _enterprise(rng: np.random.Generator) -> Message:
    # Mostly small control-plane messages, occasional medium payloads:
    # log-normal with a ~48 B median, as datacenter RPC studies report.
    size = int(np.exp(rng.normal(3.9, 0.9)))
    return sized_message(max(8, size), rng, nested=rng.random() < 0.25)


def _storage(rng: np.random.Generator) -> Message:
    # Bulk data plane: multi-KB values dominate.
    size = int(np.exp(rng.normal(8.3, 0.7)))
    return sized_message(max(512, size), rng)


def _analytics(rng: np.random.Generator) -> Message:
    # Wide, flat rows: many scalar fields, tiny payloads.
    n_fields = int(rng.integers(16, 64))
    fields = [
        Field(i + 1, FieldKind.VARINT, int(v))
        for i, v in enumerate(rng.integers(0, 1 << 40, size=n_fields))
    ]
    return Message(tuple(fields), schema_name="analytics_row")


ENTERPRISE_MIX = RpcMix("enterprise", _enterprise)
STORAGE_MIX = RpcMix("storage", _storage)
ANALYTICS_MIX = RpcMix("analytics", _analytics)

ALL_MIXES = (ENTERPRISE_MIX, STORAGE_MIX, ANALYTICS_MIX)
