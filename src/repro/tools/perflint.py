"""``python -m repro.tools.perflint`` — audit every shipped interface.

Discovers all accelerator packages under :mod:`repro.accel`, asks each
for its lint bundle (a module-level ``perflint_bundle()`` in the
package's ``interfaces`` module), and runs the full perf-lint rule set
— net, program, and cross-representation families — over each one.

This is the repo's self-audit: CI runs it and fails on any
error-severity finding, so the interfaces we ship stay as trustworthy
as the ones we would demand from a vendor.

Examples::

    python -m repro.tools.perflint                 # audit everything
    python -m repro.tools.perflint jpeg vta        # only these accels
    python -m repro.tools.perflint --json          # machine-readable
    python -m repro.tools.perflint --min-severity warning
"""

from __future__ import annotations

import argparse
import importlib
import json
import pkgutil
import sys
from collections.abc import Iterator
from time import perf_counter

from repro.lint import InterfaceBundle, LintReport, Severity, lint_bundle
from repro.lint.registry import DEFAULT_REGISTRY


def discover_bundles(
    only: list[str] | None = None,
) -> Iterator[tuple[str, InterfaceBundle]]:
    """Yield ``(package_name, bundle)`` for every accelerator package
    that ships a ``perflint_bundle()``."""
    import repro.accel

    for info in sorted(pkgutil.iter_modules(repro.accel.__path__), key=lambda m: m.name):
        if not info.ispkg:
            continue
        if only and info.name not in only:
            continue
        try:
            module = importlib.import_module(f"repro.accel.{info.name}.interfaces")
        except ModuleNotFoundError:
            continue
        factory = getattr(module, "perflint_bundle", None)
        if factory is None:
            continue
        yield info.name, factory()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.perflint",
        description="Audit the performance interfaces of all shipped accelerators",
    )
    parser.add_argument(
        "accels",
        nargs="*",
        help="accelerator package names to audit (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    parser.add_argument(
        "--min-severity",
        default="info",
        choices=["info", "warning", "error"],
        help="hide findings below this severity (exit code still gates "
        "on errors only)",
    )
    args = parser.parse_args(argv)

    bundles = list(discover_bundles(args.accels or None))
    if args.accels:
        found = {name for name, _ in bundles}
        missing = [a for a in args.accels if a not in found]
        if missing:
            print(f"error: no lint bundle for {missing}", file=sys.stderr)
            return 2
    if not bundles:
        print("error: no accelerator bundles discovered", file=sys.stderr)
        return 2

    min_sev = Severity.from_label(args.min_severity)
    # The audited families (``pnet verify`` runs "verify" separately).
    rules_run = sum(
        1 for r in DEFAULT_REGISTRY if r.family in ("net", "program", "cross")
    )
    combined = LintReport()
    payload = []
    timings: list[tuple[str, int, float]] = []  # (name, findings, ms)
    for _, bundle in bundles:
        start = perf_counter()
        report = lint_bundle(bundle)
        elapsed_ms = (perf_counter() - start) * 1e3
        combined.extend(report)
        timings.append((bundle.accelerator, len(report.diagnostics), elapsed_ms))
        if args.json:
            payload.append(
                {
                    "accelerator": bundle.accelerator,
                    "diagnostics": [d.to_json() for d in report.sorted()],
                    "summary": report.summary(),
                    "rules": rules_run,
                    "elapsed_ms": elapsed_ms,
                }
            )
            continue
        print(f"== {bundle.accelerator} ==")
        rendered = report.render(min_severity=min_sev)
        if rendered:
            print(rendered)
        print(report.summary())
        print()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"-- sweep ({rules_run} rules per bundle) --")
        width = max(len(name) for name, _, _ in timings)
        print(f"{'bundle':{width}}  {'findings':>8}  {'wall-time':>9}")
        for name, findings, ms in timings:
            print(f"{name:{width}}  {findings:8d}  {ms:7.1f}ms")
        total_ms = sum(ms for _, _, ms in timings)
        print(
            f"{'total':{width}}  {len(combined.diagnostics):8d}  "
            f"{total_ms:7.1f}ms"
        )
        print(f"total: {len(bundles)} bundle(s), {combined.summary()}")
    return combined.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
