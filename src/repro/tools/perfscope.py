"""Perfscope: the operator console for the observability stack.

One command runs a traced, metered serving scenario (the E15 fleet —
``rpc_pool`` + :class:`~repro.runtime.serving.OpenLoopServer` under an
open-loop Poisson workload) and renders what an operator would want
from it:

* ``report`` — drift observatory table (predicted-vs-observed relative
  error per device × RPC size class), pool health snapshot, and the
  request-latency breakdown (queue / service / retry);
* ``trace`` — export the run as Chrome/Perfetto ``trace_event`` JSON
  (open at https://ui.perfetto.dev) with spans from all three layers:
  Petri-net firings, DRAM bursts, and runtime offloads;
* ``metrics`` — Prometheus-style text exposition of every counter,
  gauge, and histogram the run touched;
* ``heal`` — run the self-healing scenario (a mid-serve DRAM regime
  shift on Protoacc, repaired in-band by :mod:`repro.heal`) and render
  the lifecycle report: error arc, refits, shadow verdicts, hot-swaps,
  rollbacks;
* ``scale`` — run the autoscaling scenario (diurnal trace + rolling
  fault storm, SLO-guarded controller from :mod:`repro.scale`) and
  render the scaling story: SLO verdict, scale-out/in events with
  their interface pricing, and the brownout rung transitions;
* ``explain`` — causal latency attribution: drill into the slowest-K
  requests with their exact per-stage cycle decomposition (segments
  sum bit-exactly to end-to-end), then line observed stages up against
  the interface's :meth:`~repro.core.petrinet.PetriNetInterface.predict_decomposition`
  and name the worst-mispredicted stage per device;
* ``timeline`` — replay the autoscaling scenario's SLO verdicts from
  the embedded time-series store, with brownout rung moves and
  scale-out/in events annotated inline where they happened.

The scenario subcommands share flags, so the same run can be
inspected from any angle::

    python -m repro.tools.perfscope report --faults storm
    python -m repro.tools.perfscope trace --out storm.trace.json
    python -m repro.tools.perfscope metrics --policy round_robin
    python -m repro.tools.perfscope explain --faults dram --top 5
    python -m repro.tools.perfscope heal --slowdown 5
    python -m repro.tools.perfscope scale --requests 400
    python -m repro.tools.perfscope timeline --requests 400
"""

from __future__ import annotations

import argparse
import json
from collections.abc import Sequence

from repro.obs import Obs


def run_scenario(
    *,
    policy: str = "interface_predicted",
    faults: str = "storm",
    requests: int = 120,
    gap: float = 900.0,
    seed: int = 7,
    deadline: float = 60_000.0,
    obs: Obs | None = None,
):
    """Drive the standard serving scenario under full observability.

    Returns ``(obs, pool, serve_result)``; every layer of the run has
    emitted into ``obs`` by the time this returns.
    """
    from repro.runtime.pool import rpc_pool
    from repro.runtime.serving import OpenLoopServer
    from repro.workloads.rpc import ENTERPRISE_MIX

    obs = obs if obs is not None else Obs.enabled()
    pool = rpc_pool(policy, faults=faults, seed=seed, obs=obs)
    server = OpenLoopServer(pool, deadline=deadline)
    msgs, arrivals = ENTERPRISE_MIX.sample_open(seed, requests, gap)
    result = server.run(msgs, arrivals)
    return obs, pool, result


def _breakdown_table(result) -> str:
    """Aggregate the per-request cycle decomposition into one table."""
    rows = []
    if result.breakdowns:
        n = len(result.breakdowns)
        for label, attr in (
            ("admission queue", "queue_wait"),
            ("device queue", "device_queue"),
            ("service", "service"),
            ("retry/overhead", "retry"),
            ("end to end", "end_to_end"),
        ):
            values = [getattr(b, attr) for b in result.breakdowns]
            rows.append(
                f"  {label:<16} {sum(values) / n:>12.0f} {max(values):>12.0f}"
            )
    header = f"  {'component':<16} {'mean cyc':>12} {'max cyc':>12}"
    return "\n".join([header, *rows])


def _report(obs: Obs, pool, result) -> str:
    snap = pool.snapshot()
    lines = [
        "== perfscope report ==",
        "",
        f"requests: {result.offered} offered, {len(result.served)} served, "
        f"{len(result.dropped)} dropped, {len(result.shed)} shed "
        f"(drop rate {result.drop_rate:.1%})",
        f"policy: {snap['policy']}; hedges: {snap['hedges']}; "
        f"invariant violations: {snap['invariant_violations']}",
        "",
        "-- devices --",
    ]
    for name, d in snap["devices"].items():
        breaker = d["breaker"] if d["breaker"] is not None else "(none)"
        lines.append(
            f"  {name:<14} dispatched={d['dispatched']:<4} "
            f"breaker={breaker:<9} faults={d['faults']:<3} "
            f"fallback={d['fallback_fraction']:.0%}"
        )
    if "eval_cache" in snap:
        c = snap["eval_cache"]
        lines.append(
            f"  eval cache: {c['hits']}/{c['hits'] + c['misses']} hits "
            f"({c['hit_rate']:.0%}), {c['uncacheable']} uncacheable"
        )
    lines += ["", "-- latency breakdown (served requests) --", _breakdown_table(result)]
    lines += ["", "-- drift observatory --"]
    if obs.observatory is not None:
        lines.append(obs.observatory.report())
    if obs.tracer is not None:
        lines += [
            "",
            f"trace: {len(obs.tracer)} events in "
            f"{len(obs.tracer.categories())} categories "
            f"({obs.tracer.dropped} dropped)",
        ]
    return "\n".join(lines)


def _heal_report(result) -> str:
    """Operator view of one completed self-healing scenario."""
    device, rpc_class = result.target_key
    swap = result.swap_at(device, rpc_class)
    pre = result.mean_error(device, rpc_class, until=result.shift_at)
    lines = [
        "== perfscope heal ==",
        "",
        f"scenario: DRAM regime shift on {device} at t={result.shift_at:.0f} "
        "(mid-serve, no restart)",
        f"target key: {device}/{rpc_class}",
        "",
        "-- prediction error arc (mean symmetric error) --",
        f"  before shift:          {pre:.1%}",
    ]
    if swap is not None:
        spike = result.mean_error(device, rpc_class, since=result.shift_at, until=swap)
        post = result.mean_error(device, rpc_class, since=swap)
        lines += [
            f"  shift -> hot-swap:     {spike:.1%}",
            f"  after hot-swap:        {post:.1%}",
        ]
    else:
        spike = result.mean_error(device, rpc_class, since=result.shift_at)
        lines.append(f"  after shift (no swap): {spike:.1%}")
    lines += ["", "-- lifecycle --", result.healer.report()]
    if result.obs.observatory is not None:
        lines += ["", "-- drift observatory (final) --", result.obs.observatory.report()]
    return "\n".join(lines)


def _scale_report(out: dict) -> str:
    """Operator view of one completed autoscaling scenario."""
    verdict = out["verdict"]
    controller = out["controller"]
    result = out["result"]
    lines = [
        "== perfscope scale ==",
        "",
        f"slo: {out['slo'].describe()}",
        f"verdict: {'MET' if verdict.ok else 'VIOLATED'} "
        f"(p{out['slo'].latency_quantile * 100:g}={verdict.latency:,.0f} cycles, "
        f"loss {verdict.loss_rate:.1%})",
        f"requests: {result.offered} offered, {len(result.served)} served, "
        f"{result.losses} lost "
        f"({controller.intentional_losses} intentional brownout sheds)",
        f"fleet: {len(out['pool'].devices)} devices final, "
        f"{out['avg_devices']:.2f} time-averaged",
    ]
    scaler = controller.scaler
    if scaler is not None and scaler.events:
        lines += ["", "-- scaling events (interface-priced) --"]
        for e in scaler.events:
            if e.action == "out":
                lines.append(
                    f"  t={e.at:>10.0f}  +{e.device:<16} "
                    f"predicted service {e.predicted_service:,.0f} cyc  "
                    f"({e.reason})"
                )
            else:
                lines.append(f"  t={e.at:>10.0f}  -{e.device:<16} ({e.reason})")
    ladder = controller.ladder
    if ladder is not None:
        lines += ["", "-- brownout ladder --"]
        if ladder.transitions:
            for t in ladder.transitions:
                arrow = "^" if t.direction == "climb" else "v"
                lines.append(
                    f"  t={t.at:>10.0f}  {arrow} {t.from_rung.label} "
                    f"-> {t.to_rung.label}"
                )
        else:
            lines.append("  (no transitions — the SLO never came under pressure)")
        lines.append(
            f"  {ladder.climbed()} climbs / {ladder.descended()} descents, "
            f"final rung {ladder.rung.label}"
        )
    return "\n".join(lines)


def _explain_report(obs: Obs, pool, result, *, top: int = 5) -> str:
    """Causal attribution view: slowest-K drill-down plus the
    predicted-vs-observed stage alignment."""
    from repro.obs import attribute, score_mispredictions

    attrs = attribute(result, obs.tracer, pool)
    comparisons = (
        score_mispredictions(attrs, pool, obs.observatory)
        if obs.observatory is not None
        else []
    )
    lines = [
        "== perfscope explain ==",
        "",
        f"requests attributed: {len(attrs)} "
        f"(exact-sum invariant: segments fold to end-to-end bit-exactly)",
        "",
        f"-- slowest {min(top, len(attrs))} requests, causal decomposition --",
        f"  {'seq':>4} {'device':<14} {'path':<7} "
        f"{'queue':>9} {'retry':>9} {'memory':>9} {'ovh':>8} "
        f"{'compute':>9} {'e2e':>10}",
    ]
    for a in sorted(attrs, key=lambda a: a.end_to_end, reverse=True)[:top]:
        stages = a.stages()
        lines.append(
            f"  {a.seq:>4} {a.device:<14} {a.path:<7} "
            f"{stages.get('queue', 0.0):>9.0f} {stages.get('retry', 0.0):>9.0f} "
            f"{stages.get('memory', 0.0):>9.0f} {stages.get('overhead', 0.0):>8.0f} "
            f"{stages.get('compute', 0.0):>9.0f} {a.end_to_end:>10.0f}"
        )
    if comparisons:
        by_device: dict[str, list[dict]] = {}
        for c in comparisons:
            by_device.setdefault(c["device"], []).append(c)
        lines += [
            "",
            "-- predicted vs observed stages (mean cycles, accel path) --",
            f"  {'device':<14} {'stage':<8} {'predicted':>11} {'observed':>11}",
        ]
        for device in sorted(by_device):
            cs = by_device[device]
            n = len(cs)
            for stage in ("memory", "compute"):
                pred = sum(c["predicted"][stage] for c in cs) / n
                obsv = sum(c["observed"][stage] for c in cs) / n
                lines.append(
                    f"  {device:<14} {stage:<8} {pred:>11.0f} {obsv:>11.0f}"
                )
    if obs.observatory is not None:
        lines += ["", "-- worst-mispredicted stage per device --"]
        devices = sorted({a.device for a in attrs if a.path == "accel"})
        named = False
        for device in devices:
            worst = obs.observatory.top_mispredicted_stage(device)
            if worst is not None:
                stage, err = worst
                lines.append(
                    f"  {device:<14} {stage:<8} mean symmetric error {err:.1%}"
                )
                named = True
        if not named:
            lines.append("  (no stage samples — attribution saw no accel traffic)")
        lines += ["", "-- stage attribution detail --", obs.observatory.stage_report()]
    return "\n".join(lines)


def _timeline_report(obs: Obs, out: dict) -> str:
    """SLO verdicts from the time-series store, with scale and brownout
    instants annotated at the rows where they landed."""
    tsdb = obs.tsdb
    verdict = out["verdict"]
    lines = [
        "== perfscope timeline ==",
        "",
        f"slo: {out['slo'].describe()}",
        f"verdict: {'MET' if verdict.ok else 'VIOLATED'} "
        f"(p{out['slo'].latency_quantile * 100:g}={verdict.latency:,.0f} cycles, "
        f"loss {verdict.loss_rate:.1%})",
        "",
    ]
    points = tsdb.points("slo_latency")
    if not points:
        lines.append("(no SLO verdicts recorded — run too short for a decision)")
        return "\n".join(lines)
    budget = out["slo"].latency_budget
    ok_points = dict(tsdb.points("slo_ok"))
    fleet = dict(tsdb.points("pool_device_count"))
    events = list(tsdb.events())
    peak = max(v for _, v in points)
    width = 32
    lines += [
        f"-- slo latency timeline ({len(points)} verdicts, "
        f"budget {budget:,.0f} cycles) --"
    ]
    event_idx = 0
    current_rung = 0
    for at, latency in points:
        bar = "#" * max(1, round(width * latency / peak)) if peak > 0 else ""
        flag = "   " if ok_points.get(at, 1.0) >= 1.0 else "VIO"
        annotations = []
        # Events that happened since the previous verdict annotate this row.
        while event_idx < len(events) and events[event_idx][0] <= at:
            _, name, fields = events[event_idx]
            if name.startswith("brownout:"):
                current_rung = int(fields.get("rung", current_rung))
                annotations.append(f"{name} -> {fields.get('to_rung')}")
            elif name.startswith("scale:"):
                annotations.append(f"{name} {fields.get('device')}")
            event_idx += 1
        suffix = f"   [{'; '.join(annotations)}]" if annotations else ""
        lines.append(
            f"  t={at:>10.0f} {flag} {latency:>9,.0f} "
            f"n={fleet.get(at, 0):>2.0f} r={current_rung} "
            f"|{bar:<{width}}|{suffix}"
        )
    remaining = events[event_idx:]
    if remaining:
        lines += ["", "-- instants after the last verdict --"]
        lines += [f"  t={at:>10.0f} {name} {fields}" for at, name, fields in remaining]
    violations = sum(1 for _, v in ok_points.items() if v < 1.0)
    lines += [
        "",
        f"{violations}/{len(points)} verdicts violated; "
        f"{tsdb.snapshot()['points']} points across "
        f"{tsdb.snapshot()['series']} series in the store",
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.perfscope",
        description="Run a traced serving scenario and inspect it.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    commands = {
        "report": "drift/health/breakdown operator report",
        "trace": "export a Chrome/Perfetto trace of the run",
        "metrics": "Prometheus-style text exposition",
        "explain": "causal latency attribution: slowest-K drill-down",
    }
    for name, help_text in commands.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--policy",
            default="interface_predicted",
            help="pool routing policy (default: interface_predicted)",
        )
        p.add_argument(
            "--faults",
            default="storm",
            choices=("none", "storm", "dram"),
            help="fault environment (default: storm)",
        )
        p.add_argument("--requests", type=int, default=120)
        p.add_argument(
            "--gap", type=float, default=900.0, help="mean inter-arrival gap, cycles"
        )
        p.add_argument("--seed", type=int, default=7)
        if name == "trace":
            p.add_argument(
                "--out",
                default="perfscope.trace.json",
                help="output path for the trace_event JSON",
            )
        if name == "explain":
            p.add_argument(
                "--top",
                type=int,
                default=5,
                help="how many slowest requests to drill into (default: 5)",
            )
    heal = sub.add_parser(
        "heal",
        help="run the self-healing scenario and render its lifecycle report",
    )
    heal.add_argument("--requests", type=int, default=420)
    heal.add_argument(
        "--gap", type=float, default=900.0, help="mean inter-arrival gap, cycles"
    )
    heal.add_argument("--seed", type=int, default=7)
    heal.add_argument(
        "--slowdown",
        type=float,
        default=5.0,
        help="DRAM latency scale injected mid-serve (default: 5.0)",
    )
    heal.add_argument(
        "--mix",
        default="storage",
        help="RPC workload mix (default: storage — routes to protoacc)",
    )
    scale = sub.add_parser(
        "scale",
        help="run the autoscaling scenario and render the scaling story",
    )
    scale.add_argument("--requests", type=int, default=400)
    scale.add_argument("--seed", type=int, default=17)
    scale.add_argument(
        "--no-autoscale",
        action="store_true",
        help="fixed fleet: brownout ladder only, no membership changes",
    )
    timeline = sub.add_parser(
        "timeline",
        help="SLO timeline from the time-series store, events annotated",
    )
    timeline.add_argument("--requests", type=int, default=400)
    timeline.add_argument("--seed", type=int, default=17)
    timeline.add_argument(
        "--no-autoscale",
        action="store_true",
        help="fixed fleet: brownout ladder only, no membership changes",
    )
    args = parser.parse_args(argv)

    if args.command == "timeline":
        from repro.scale import run_scale_scenario

        obs = Obs.enabled(drift=False, tsdb=True)
        out = run_scale_scenario(
            count=args.requests,
            seed=args.seed,
            autoscale=not args.no_autoscale,
            obs=obs,
        )
        print(_timeline_report(obs, out))
        return 0 if out["verdict"].ok else 1

    if args.command == "scale":
        from repro.scale import run_scale_scenario

        out = run_scale_scenario(
            count=args.requests,
            seed=args.seed,
            autoscale=not args.no_autoscale,
        )
        print(_scale_report(out))
        return 0 if out["verdict"].ok else 1

    if args.command == "heal":
        from repro.heal import run_heal_scenario

        result = run_heal_scenario(
            requests=args.requests,
            gap=args.gap,
            seed=args.seed,
            slowdown=args.slowdown,
            mix=args.mix,
        )
        print(_heal_report(result))
        return 0

    obs, pool, result = run_scenario(
        policy=args.policy,
        faults=args.faults,
        requests=args.requests,
        gap=args.gap,
        seed=args.seed,
    )

    if args.command == "report":
        print(_report(obs, pool, result))
    elif args.command == "explain":
        print(_explain_report(obs, pool, result, top=args.top))
    elif args.command == "trace":
        path = obs.tracer.export_chrome_trace(args.out)
        document = json.loads(path.read_text())
        print(
            f"wrote {path} ({len(document['traceEvents'])} events, "
            f"categories: {', '.join(sorted(obs.tracer.categories()))})"
        )
    elif args.command == "metrics":
        print(obs.metrics.render_text(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
