"""``python -m repro.tools.pnet`` — the performance-IR toolchain CLI.

The paper's vision has vendors *shipping* Petri-net interfaces; users
then need tooling to inspect and run what they received.  Subcommands:

* ``validate FILE`` — parse and statically analyze a ``.pnet`` document
  (structure report, warnings, cycles).
* ``lint FILE`` — run the perf-lint rules (see :mod:`repro.lint`) and
  print compiler-style diagnostics with line numbers; exits nonzero on
  error-severity findings.
* ``verify [TARGET...]`` — run the static performance-contract verifier
  (:mod:`repro.lint.verify`): symbolic latency bounds, corner-point
  concretization against the compiled engine, and monotonicity
  certificates.  Targets are shipped accelerator names or ``.pnet``
  paths (a ``path.contract.json`` sidecar is picked up automatically);
  with no targets, every shipped bundle is verified.
* ``dot FILE`` — emit Graphviz DOT for rendering.
* ``simulate FILE --items N [--payload JSON] [--gap G] [--engine E]``
  (alias: ``run``) — inject a workload and report latency/throughput
  statistics; ``--engine`` picks the compiled fast path, the reference
  interpreter, automatic selection, or ``batched`` (the whole-matrix
  engines — see ``docs/performance.md``).  ``--batch FILE.jsonl``
  evaluates one workload item per line (each line a JSON features
  dict used as that item's token payload) in a single batch pass.

Examples::

    python -m repro.tools.pnet validate iface.pnet
    python -m repro.tools.pnet lint iface.pnet --json
    python -m repro.tools.pnet dot iface.pnet > iface.dot
    python -m repro.tools.pnet simulate iface.pnet --items 100 \
        --payload '{"bytes": 32, "nnz": 10, "i": 0, "wr": true}'
    python -m repro.tools.pnet run iface.pnet --items 20 --gap 2 \
        --batch sweep.jsonl --engine batched
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.hw.stats import Summary
from repro.petri import (
    ENGINES,
    BatchEvaluator,
    DslError,
    SimulationError,
    analyze_structure,
    find_cycles,
    make_simulator,
    parse,
    to_dot,
)


def _load(path: str):
    text = Path(path).read_text()
    return parse(text)


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        net = _load(args.file)
    except DslError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 1
    report = analyze_structure(net)
    print(f"net {net.name!r}: {report.summary()}")
    cycles = find_cycles(net)
    if cycles:
        print(f"cycles ({len(cycles)}):")
        for cyc in cycles:
            print("  " + " -> ".join(cyc))
    hard = [w for w in report.warnings if "sink" not in w]
    return 1 if hard else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import Severity, lint_pnet_text

    text = Path(args.file).read_text()
    extra: dict[str, frozenset[str] | None] = {}
    for decl in args.inject or []:
        place, _, fields = decl.partition(":")
        extra[place] = frozenset(fields.split(",")) if fields else None
    report = lint_pnet_text(text, filename=args.file, extra_injections=extra)
    if args.json:
        print(json.dumps([d.to_json() for d in report.sorted()], indent=2))
    else:
        min_sev = Severity.from_label(args.min_severity)
        rendered = report.render(min_severity=min_sev)
        if rendered:
            print(rendered)
        print(report.summary())
    return report.exit_code


def cmd_dot(args: argparse.Namespace) -> int:
    print(to_dot(_load(args.file)))
    return 0


def _verify_jobs(targets: list[str]):
    """Resolve ``pnet verify`` targets into (name, bundle) pairs.

    A target is either a shipped accelerator package name (``protoacc``)
    or a ``.pnet`` path; paths pick up a ``.contract.json`` sidecar
    automatically when one sits next to the document."""
    from repro.lint import InterfaceBundle, load_contract, sidecar_path
    from repro.tools.perflint import discover_bundles

    if not targets:
        yield from discover_bundles()
        return
    shipped = None
    for target in targets:
        path = Path(target)
        if target.endswith(".pnet") or path.exists():
            contract = None
            side = Path(sidecar_path(str(path)))
            if side.exists():
                contract = load_contract(str(side))
            yield (
                path.stem,
                InterfaceBundle(
                    accelerator=path.stem,
                    pnet_text=path.read_text(),
                    pnet_file=str(path),
                    entry=contract.entry if contract is not None else "in",
                    sink=contract.sink if contract is not None else "out",
                    feature_domains=(
                        dict(contract.domains) if contract is not None else {}
                    ),
                    declared_monotone={
                        c.feature: (+1 if c.direction == "non-decreasing" else -1)
                        for c in (
                            contract.monotone if contract is not None else ()
                        )
                        if c.direction in ("non-decreasing", "non-increasing")
                    },
                    contract=contract,
                ),
            )
        else:
            if shipped is None:
                shipped = dict(discover_bundles())
            if target not in shipped:
                known = ", ".join(sorted(shipped))
                raise SystemExit(
                    f"error: unknown verify target {target!r} "
                    f"(shipped bundles: {known}; or pass a .pnet path)"
                )
            yield target, shipped[target]


def _verify_summary(verification) -> dict:
    """The machine-readable half of one bundle's verification."""
    contract = verification.contract
    out: dict = {
        "corners": {
            "checked": len(verification.corners),
            "passed": sum(c.ok for c in verification.corners),
        },
    }
    if contract is not None:
        out["contract"] = contract.to_json()
    return out


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.lint import verify_bundle

    worst = 0
    results = []
    for name, bundle in _verify_jobs(args.target):
        report, verification = verify_bundle(
            bundle, epsilon=args.epsilon, engine=args.engine or "auto"
        )
        worst = max(worst, report.exit_code)
        if args.json:
            results.append(
                {
                    "target": name,
                    "exit_code": report.exit_code,
                    "diagnostics": [d.to_json() for d in report.sorted()],
                    **_verify_summary(verification),
                }
            )
            continue
        contract = verification.contract
        print(f"== {name} ==")
        rendered = report.render()
        if rendered:
            print(rendered)
        if contract is not None and contract.evaluability != "opaque":
            print(
                f"bounds: [{contract.min_latency:g}, {contract.max_latency:g}] "
                f"cycles ({contract.evaluability})"
            )
            if contract.min_expr:
                print(f"  min: {contract.min_expr}")
            if contract.max_expr:
                print(f"  max: {contract.max_expr}")
        checked = len(verification.corners)
        if checked:
            passed = sum(c.ok for c in verification.corners)
            print(f"corner concretization: {passed}/{checked} passed")
        proven = [
            m for m in (contract.monotone if contract is not None else ()) if m.proven
        ]
        for m in proven:
            slope = f" (slope <= {m.slope:g})" if m.slope is not None else ""
            print(f"proven: {m.feature} {m.direction}{slope} [{m.proof}]")
        print(report.summary())
    if args.json:
        print(json.dumps(results, indent=2))
    return worst


def _read_batch_file(path: str) -> list | None:
    """One JSON features-dict per line -> one workload item per line."""
    payloads = []
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as exc:
        print(f"error: cannot read batch file: {exc}", file=sys.stderr)
        return None
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            payloads.append(json.loads(line))
        except ValueError as exc:
            print(f"error: {path}:{lineno}: invalid JSON ({exc})", file=sys.stderr)
            return None
    if not payloads:
        print(f"error: batch file {path} has no items", file=sys.stderr)
        return None
    return payloads


def cmd_batched(args: argparse.Namespace, net, payloads: list) -> int:
    """Evaluate a matrix of workload items in one batch pass."""
    items = [
        [(args.entry, payload, k * args.gap) for k in range(args.items)]
        for payload in payloads
    ]
    try:
        evaluator = BatchEvaluator(net, (args.sink,))
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    start = time.perf_counter()
    try:
        results = evaluator.evaluate(items)
    except Exception as exc:  # engine errors carry the offending detail
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    deadlocked = sum(r.deadlocked for r in results)
    print(f"items: {len(results)} x {args.items} tokens")
    print(
        f"batch engine: {evaluator.engine} "
        f"(codegen={evaluator.items_codegen}, "
        f"columnar={evaluator.items_columnar})"
    )
    print(f"makespan (cycles): {Summary.of([r.makespan for r in results])}")
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    print(f"wall: {elapsed * 1e3:.1f} ms ({rate:,.0f} items/sec)")
    if deadlocked:
        print(f"DEADLOCK in {deadlocked}/{len(results)} items", file=sys.stderr)
        return 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    net = _load(args.file)
    payload = json.loads(args.payload) if args.payload else None
    if args.entry not in net.places:
        print(f"error: entry place {args.entry!r} not in net", file=sys.stderr)
        return 1
    if args.sink not in net.places:
        print(f"error: sink place {args.sink!r} not in net", file=sys.stderr)
        return 1
    if args.batch is not None or args.engine == "batched":
        if args.batch is not None:
            payloads = _read_batch_file(args.batch)
            if payloads is None:
                return 1
        else:
            payloads = [payload]
        return cmd_batched(args, net, payloads)
    sim = make_simulator(net, sinks=(args.sink,), engine=args.engine)
    sim.inject_stream(args.entry, [payload] * args.items, gap=args.gap)
    result = sim.run()
    if result.deadlocked:
        print(
            f"DEADLOCK after {len(result.sink())} completions; "
            f"marking: {net.marking()}",
            file=sys.stderr,
        )
        return 1
    if not result.sink():
        print("no completions (empty workload?)", file=sys.stderr)
        return 1
    lat = Summary.of(result.latencies())
    print(f"completions: {len(result.sink())}")
    print(f"latency (cycles): {lat}")
    print(f"makespan: {result.makespan():.1f}")
    print(f"throughput: {result.throughput():.6f} items/cycle")
    print("firings: " + ", ".join(f"{k}={v}" for k, v in sorted(result.fired.items())))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.pnet",
        description="Inspect and run .pnet performance interfaces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_val = sub.add_parser("validate", help="parse + static analysis")
    p_val.add_argument("file")
    p_val.set_defaults(fn=cmd_validate)

    p_lint = sub.add_parser("lint", help="run perf-lint rules")
    p_lint.add_argument("file")
    p_lint.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    p_lint.add_argument(
        "--min-severity",
        default="info",
        choices=["info", "warning", "error"],
        help="hide findings below this severity (exit code still gates "
        "on errors only)",
    )
    p_lint.add_argument(
        "--inject",
        action="append",
        metavar="PLACE[:f1,f2]",
        help="declare an injection point (repeatable); overrides/extends "
        "the document's own inject clauses",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT")
    p_dot.add_argument("file")
    p_dot.set_defaults(fn=cmd_dot)

    p_verify = sub.add_parser(
        "verify",
        help="prove latency bounds + monotonicity contracts "
        "(all shipped bundles when no target is given)",
    )
    p_verify.add_argument(
        "target",
        nargs="*",
        help="accelerator package name (e.g. protoacc) or .pnet path "
        "(picks up a .contract.json sidecar); default: every shipped bundle",
    )
    p_verify.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )
    p_verify.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="relative tolerance for corner-point concretization "
        "(default: the contract's own epsilon, else 0.02)",
    )
    p_verify.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINES),
        help="simulation engine for corner concretization",
    )
    p_verify.set_defaults(fn=cmd_verify)

    # "run" is an alias for "simulate" (matches the docs' `pnet run`).
    for cmd in ("simulate", "run"):
        p_sim = sub.add_parser(cmd, help="run a workload through the net")
        p_sim.add_argument("file")
        p_sim.add_argument("--items", type=int, default=10, help="tokens to inject")
        p_sim.add_argument(
            "--payload", help="JSON payload for each token (delay exprs read it)"
        )
        p_sim.add_argument("--gap", type=float, default=0.0, help="inter-arrival gap")
        p_sim.add_argument("--entry", default="in", help="injection place")
        p_sim.add_argument("--sink", default="out", help="completion place")
        p_sim.add_argument(
            "--engine",
            default=None,
            choices=[*ENGINES, "batched"],
            help="simulation engine (default: REPRO_PETRI_ENGINE or auto; "
            "auto compiles when the net is supported, else falls back to "
            "the reference interpreter; batched evaluates the workload "
            "through the whole-matrix engines, honoring "
            "REPRO_PETRI_BATCH_ENGINE)",
        )
        p_sim.add_argument(
            "--batch",
            metavar="FILE.jsonl",
            help="evaluate one workload item per line of FILE (each line "
            "a JSON features dict used as that item's token payload) in "
            "a single batch pass; implies --engine batched",
        )
        p_sim.set_defaults(fn=cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
