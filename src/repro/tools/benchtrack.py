"""Benchtrack: the performance-regression sentinel for the benchmark suite.

Benchmarks emit machine-readable ``BENCH_<name>.json`` files next to
their human-readable reports (``benchmarks/results/``) containing only
*deterministic* metrics — virtual-cycle latencies, counts, event
tallies — that reproduce bit-for-bit at a pinned ``REPRO_BENCH_SCALE``.
This module compares a fresh set of those files against committed
baselines (``benchmarks/baselines/``) with per-metric tolerance bands,
so CI can fail a pull request that silently regresses serving latency
even while every correctness test still passes.

Baseline format (one JSON file per benchmark)::

    {
      "bench": "serving",
      "metrics": {
        "served_p95_cycles": {"value": 41210.0, "tolerance": 0.05,
                              "direction": "max"}
      }
    }

``direction`` says which way is a regression: ``max`` (bigger is
worse — latencies), ``min`` (smaller is worse — throughput, hit
rates), ``both`` (any drift beyond the band — determinism canaries).
Fresh results are plain ``{"bench": ..., "metrics": {name: value}}``.

CLI::

    python -m repro.tools.benchtrack check            # exit 1 + metric name on regression
    python -m repro.tools.benchtrack check --results benchmarks/results
    python -m repro.tools.benchtrack bless            # (re)write baselines from fresh results
"""

from __future__ import annotations

import argparse
import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

#: Band applied by ``bless`` when the baseline does not pin one.
DEFAULT_TOLERANCE = 0.05

_DIRECTIONS = ("max", "min", "both")
_RESULTS_DIR = Path("benchmarks/results")
_BASELINES_DIR = Path("benchmarks/baselines")


@dataclass(frozen=True)
class Finding:
    """One metric's verdict from a baseline comparison."""

    bench: str
    metric: str
    status: str  # "ok" | "regressed" | "missing" | "new"
    value: float | None
    baseline: float | None
    tolerance: float
    direction: str

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "new")

    def __str__(self) -> str:
        if self.status == "regressed":
            bound = self.baseline * (
                1 + self.tolerance if self.direction != "min" else 1 - self.tolerance
            )
            return (
                f"REGRESSED {self.bench}.{self.metric}: {self.value:g} vs "
                f"baseline {self.baseline:g} "
                f"(tolerance {self.tolerance:.0%} {self.direction}, "
                f"bound {bound:g})"
            )
        if self.status == "missing":
            return (
                f"MISSING {self.bench}.{self.metric}: baseline expects it, "
                "fresh results do not report it"
            )
        return f"{self.status} {self.bench}.{self.metric}"


def compare(fresh: dict, baseline: dict) -> list[Finding]:
    """Judge one benchmark's fresh metrics against its baseline.

    Every baseline metric must be present and inside its band; fresh
    metrics the baseline does not know are ``new`` (informational, not
    failures — ``bless`` adopts them).
    """
    bench = str(baseline.get("bench", fresh.get("bench", "?")))
    fresh_metrics = fresh.get("metrics", {})
    findings = []
    for name, spec in sorted(baseline.get("metrics", {}).items()):
        expected = float(spec["value"])
        tolerance = float(spec.get("tolerance", DEFAULT_TOLERANCE))
        direction = str(spec.get("direction", "both"))
        if direction not in _DIRECTIONS:
            raise ValueError(
                f"{bench}.{name}: direction must be one of {_DIRECTIONS}"
            )
        if tolerance < 0:
            raise ValueError(f"{bench}.{name}: tolerance must be >= 0")
        if name not in fresh_metrics:
            findings.append(
                Finding(bench, name, "missing", None, expected, tolerance, direction)
            )
            continue
        value = float(fresh_metrics[name])
        # The band is relative to the baseline magnitude; a zero
        # baseline degenerates to an absolute band of `tolerance`.
        band = tolerance * (abs(expected) if expected != 0 else 1.0)
        high = value > expected + band
        low = value < expected - band
        regressed = (
            (direction == "max" and high)
            or (direction == "min" and low)
            or (direction == "both" and (high or low))
        )
        findings.append(
            Finding(
                bench,
                name,
                "regressed" if regressed else "ok",
                value,
                expected,
                tolerance,
                direction,
            )
        )
    for name in sorted(set(fresh_metrics) - set(baseline.get("metrics", {}))):
        findings.append(
            Finding(
                bench,
                name,
                "new",
                float(fresh_metrics[name]),
                None,
                DEFAULT_TOLERANCE,
                "both",
            )
        )
    return findings


def _fresh_files(results: Path) -> list[Path]:
    """Sentinel-conforming fresh results: ``BENCH_*.json`` files with a
    top-level ``metrics`` dict.  Files without one (e.g. the mega-batch
    sweep's wall-clock report) are not gateable and are skipped."""
    out = []
    for path in sorted(results.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        if isinstance(document, dict) and isinstance(document.get("metrics"), dict):
            out.append(path)
    return out


def _baseline_for(fresh_path: Path, baselines: Path) -> Path:
    return baselines / fresh_path.name


def check(
    *,
    results: Path = _RESULTS_DIR,
    baselines: Path = _BASELINES_DIR,
    require_baselines: bool = True,
) -> tuple[list[Finding], list[str]]:
    """Compare every fresh ``BENCH_*.json`` under ``results`` against
    its committed baseline.  Returns ``(findings, problems)`` where
    ``problems`` are structural failures (no fresh results at all, a
    baseline with no fresh counterpart)."""
    problems: list[str] = []
    findings: list[Finding] = []
    fresh_paths = _fresh_files(results)
    if not fresh_paths:
        problems.append(f"no BENCH_*.json results under {results}")
    seen = set()
    for path in fresh_paths:
        fresh = json.loads(path.read_text())
        baseline_path = _baseline_for(path, baselines)
        seen.add(baseline_path.name)
        if not baseline_path.exists():
            if require_baselines:
                problems.append(f"no committed baseline for {path.name}")
            continue
        findings.extend(compare(fresh, json.loads(baseline_path.read_text())))
    for stale in sorted(baselines.glob("BENCH_*.json")):
        if stale.name not in seen:
            problems.append(f"baseline {stale.name} has no fresh result")
    return findings, problems


def bless(
    *,
    results: Path = _RESULTS_DIR,
    baselines: Path = _BASELINES_DIR,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Path]:
    """(Re)write baselines from the fresh results, keeping each
    existing metric's tolerance/direction and adopting new metrics at
    ``tolerance``/``both``."""
    written = []
    baselines.mkdir(parents=True, exist_ok=True)
    for path in _fresh_files(results):
        fresh = json.loads(path.read_text())
        baseline_path = _baseline_for(path, baselines)
        prior = (
            json.loads(baseline_path.read_text()).get("metrics", {})
            if baseline_path.exists()
            else {}
        )
        metrics = {}
        for name, value in sorted(fresh.get("metrics", {}).items()):
            spec = dict(prior.get(name, {}))
            spec["value"] = float(value)
            spec.setdefault("tolerance", tolerance)
            spec.setdefault("direction", "both")
            metrics[name] = spec
        baseline_path.write_text(
            json.dumps(
                {"bench": fresh.get("bench", path.stem), "metrics": metrics},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        written.append(baseline_path)
    return written


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.benchtrack",
        description="Gate benchmark metrics against committed baselines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("check", "fail (exit 1) if any metric left its tolerance band"),
        ("bless", "write baselines from the fresh BENCH_*.json results"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--results",
            type=Path,
            default=_RESULTS_DIR,
            help=f"directory of fresh BENCH_*.json files (default: {_RESULTS_DIR})",
        )
        p.add_argument(
            "--baselines",
            type=Path,
            default=_BASELINES_DIR,
            help=f"directory of committed baselines (default: {_BASELINES_DIR})",
        )
        if name == "bless":
            p.add_argument(
                "--tolerance",
                type=float,
                default=DEFAULT_TOLERANCE,
                help="band for newly adopted metrics (default: 5%%)",
            )
    args = parser.parse_args(argv)

    if args.command == "bless":
        for path in bless(
            results=args.results, baselines=args.baselines, tolerance=args.tolerance
        ):
            print(f"blessed {path}")
        return 0

    findings, problems = check(results=args.results, baselines=args.baselines)
    bad = [f for f in findings if not f.ok]
    for f in findings:
        print(f)
    for p in problems:
        print(f"PROBLEM: {p}")
    ok = not bad and not problems
    total = len(findings)
    print(
        f"benchtrack: {total - len(bad)}/{total} metrics within tolerance"
        + ("" if ok else " -- FAILED")
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
