"""Command-line tooling for shipped performance interfaces."""
