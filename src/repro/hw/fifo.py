"""Bounded FIFO with hardware-style occupancy semantics.

Used by the tick-accurate reference pipeline and by the VTA model's
dependency-token queues.  The FIFO is "flow-through": an item pushed at
cycle *t* may be popped at cycle *t* (combinational bypass), matching
the instantaneous-transfer semantics of the analytical recurrence in
:mod:`repro.hw.pipeline` and of the Petri-net engine.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class Fifo(Generic[T]):
    """A capacity-bounded queue with explicit full/empty checks.

    A FIFO has no clock of its own (its users tick it), so ``tracer``
    records occupancy as a counter track indexed by *operation number*
    (pushes + pops so far) — a depth-over-activity profile that makes
    high-water excursions visible in the trace viewer.  For sampled
    gauges on a metrics registry instead, see
    :func:`repro.obs.metrics.watch_fifo`.
    """

    def __init__(self, capacity: int, name: str = "fifo", *, tracer=None):
        if capacity < 1:
            raise ValueError("fifo capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self.tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._items: deque[T] = deque()
        #: Cumulative statistics.
        self.pushes = 0
        self.pops = 0
        self.high_water = 0

    def can_push(self) -> bool:
        return len(self._items) < self.capacity

    def can_pop(self) -> bool:
        return bool(self._items)

    def push(self, item: T) -> None:
        if not self.can_push():
            raise OverflowError(f"fifo {self.name!r} full (capacity {self.capacity})")
        self._items.append(item)
        self.pushes += 1
        self.high_water = max(self.high_water, len(self._items))
        if self.tracer is not None:
            self.tracer.counter(
                f"fifo.{self.name}.depth",
                self.pushes + self.pops,
                len(self._items),
                tid=self.name,
            )

    def pop(self) -> T:
        if not self._items:
            raise IndexError(f"fifo {self.name!r} empty")
        self.pops += 1
        item = self._items.popleft()
        if self.tracer is not None:
            self.tracer.counter(
                f"fifo.{self.name}.depth",
                self.pushes + self.pops,
                len(self._items),
                tid=self.name,
            )
        return item

    def front(self) -> T:
        if not self._items:
            raise IndexError(f"fifo {self.name!r} empty")
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fifo({self.name!r}, {len(self._items)}/{self.capacity})"
