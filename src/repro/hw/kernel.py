"""Discrete-event and clocked simulation kernels.

Ground-truth accelerator models in :mod:`repro.accel` are built on two
substrates:

* :class:`EventSim` — a time-ordered callback queue, used by models
  whose components interact at irregular instants (DRAM controllers,
  VTA's four concurrent modules).
* :class:`ClockedSim` — ticks registered modules once per cycle, used
  by reference models that we cross-validate the fast recurrences
  against (see :mod:`repro.hw.pipeline`).

Both are deterministic: simultaneous work is ordered by registration /
schedule sequence numbers.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol


class SimError(Exception):
    """Raised on invalid kernel usage (time travel, runaway loops)."""


@dataclass(order=True)
class _Scheduled:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)


class EventSim:
    """Minimal deterministic discrete-event kernel."""

    def __init__(self) -> None:
        self._queue: list[_Scheduled] = []
        self._seq = itertools.count()
        self.now = 0.0

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._queue, _Scheduled(time, next(self._seq), fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        self.at(self.now + delay, fn)

    def run(self, *, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Drain the queue; returns the final simulation time."""
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            ev = heapq.heappop(self._queue)
            self.now = ev.time
            ev.fn()
            processed += 1
            if processed > max_events:
                raise SimError(f"exceeded {max_events} events; runaway model?")
        return self.now

    def pending(self) -> int:
        return len(self._queue)


class Clocked(Protocol):
    """A module advanced once per clock cycle by :class:`ClockedSim`."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class ClockedSim:
    """Ticks registered modules once per cycle until a stop condition.

    Modules are ticked in registration order each cycle.  The companion
    intra-cycle fixpoint used by flow-through FIFO pipelines lives in
    :mod:`repro.hw.pipeline`, not here; this kernel is a plain
    synchronous clock.
    """

    def __init__(self) -> None:
        self._modules: list[Clocked] = []
        self.cycle = 0

    def add(self, module: Clocked) -> None:
        self._modules.append(module)

    def run_until(
        self, done: Callable[[], bool], *, max_cycles: int = 100_000_000
    ) -> int:
        """Tick until ``done()`` is true; returns the cycle count."""
        while not done():
            for m in self._modules:
                m.tick(self.cycle)
            self.cycle += 1
            if self.cycle > max_cycles:
                raise SimError(f"exceeded {max_cycles} cycles; model hung?")
        return self.cycle
