"""Cycle-level hardware modeling substrate for ground-truth accelerators.

The paper measured real RTL (via Verilator and FPGAs); we have neither,
so every accelerator's "hardware" in this reproduction is a model built
from the pieces in this package.  DESIGN.md §5 documents the timing
semantics; the property tests prove the fast analytical recurrences
match cycle-ticking references.
"""

from .fifo import Fifo
from .kernel import ClockedSim, EventSim, SimError
from .memory import Dram, DramConfig
from .noc import BusConfig, SharedBus, expected_bus_delay
from .pipeline import LinePipeline, PipelineSchedule, StageSpec, TickPipeline
from .stats import ErrorReport, Reservoir, Summary, relative_error, relative_errors
from .tlb import Tlb, TlbConfig

__all__ = [
    "BusConfig",
    "ClockedSim",
    "Dram",
    "DramConfig",
    "ErrorReport",
    "EventSim",
    "Fifo",
    "LinePipeline",
    "PipelineSchedule",
    "Reservoir",
    "SharedBus",
    "SimError",
    "StageSpec",
    "Summary",
    "TickPipeline",
    "Tlb",
    "TlbConfig",
    "expected_bus_delay",
    "relative_error",
    "relative_errors",
]
