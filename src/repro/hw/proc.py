"""Generator-based processes on top of :class:`repro.hw.EventSim`.

Models with several concurrently-executing engines (VTA's fetch, load,
compute, and store modules) read far more naturally as communicating
sequential processes than as callback chains.  A process is a generator
that yields commands:

* ``Delay(dt)`` — advance this process ``dt`` time units.
* ``Get(queue)`` — pop one item from a :class:`ProcQueue`, blocking
  while it is empty; the item is sent back into the generator.
* ``Put(queue, item)`` — push one item, blocking while the queue is at
  capacity.

Determinism: all wakeups are scheduled through the event kernel, so
same-time events run in schedule order; two runs of the same program
interleave identically.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from .kernel import EventSim, SimError


@dataclass(frozen=True)
class Delay:
    dt: float


@dataclass(frozen=True)
class Get:
    queue: ProcQueue


@dataclass(frozen=True)
class Put:
    queue: ProcQueue
    item: Any = None


Command = Delay | Get | Put
ProcGen = Generator[Command, Any, None]


class ProcQueue:
    """A token/message queue connecting processes.

    Items are FIFO.  ``capacity=None`` means unbounded (dependency-token
    queues); a bounded queue blocks putters when full (command queues).
    """

    def __init__(self, sim: EventSim, capacity: int | None = None, name: str = "q"):
        if capacity is not None and capacity < 1:
            raise SimError("queue capacity must be >= 1 or None")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Callable[[Any], None]] = deque()
        self._putters: deque[tuple[Any, Callable[[Any], None]]] = deque()
        #: Statistics.
        self.puts = 0
        self.gets = 0

    def __len__(self) -> int:
        return len(self._items)

    # Internal plumbing used by the scheduler -------------------------
    def _try_get(self, resume: Callable[[Any], None]) -> None:
        if self._items:
            item = self._items.popleft()
            self.gets += 1
            self._admit_waiting_putter()
            self._sim.after(0.0, lambda: resume(item))
        else:
            self._getters.append(resume)

    def _try_put(self, item: Any, resume: Callable[[Any], None]) -> None:
        if self._getters:
            getter = self._getters.popleft()
            self.puts += 1
            self.gets += 1
            self._sim.after(0.0, lambda: getter(item))
            self._sim.after(0.0, lambda: resume(None))
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.puts += 1
            self._sim.after(0.0, lambda: resume(None))
        else:
            self._putters.append((item, resume))

    def _admit_waiting_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            item, resume = self._putters.popleft()
            self._items.append(item)
            self.puts += 1
            self._sim.after(0.0, lambda: resume(None))


def spawn(sim: EventSim, gen: ProcGen, *, name: str = "proc") -> dict:
    """Start a process; returns a status dict updated as it runs.

    The status dict has keys ``done`` (bool) and ``end`` (finish time or
    ``None``), letting callers poll completion after ``sim.run()``.
    """
    status = {"done": False, "end": None, "name": name}

    def step(send_value: Any) -> None:
        try:
            cmd = gen.send(send_value)
        except StopIteration:
            status["done"] = True
            status["end"] = sim.now
            return
        if isinstance(cmd, Delay):
            if cmd.dt < 0:
                raise SimError(f"process {name!r} yielded negative delay {cmd.dt}")
            sim.after(cmd.dt, lambda: step(None))
        elif isinstance(cmd, Get):
            cmd.queue._try_get(step)
        elif isinstance(cmd, Put):
            cmd.queue._try_put(cmd.item, step)
        else:
            raise SimError(f"process {name!r} yielded unknown command {cmd!r}")

    sim.after(0.0, lambda: step(None))
    return status
