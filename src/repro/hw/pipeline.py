"""Exact timing of linear pipelines with bounded inter-stage FIFOs.

This is the workhorse of the ground-truth accelerator models: a linear
pipeline of serial stages (one item in flight per stage, initiation
interval = service time) joined by bounded FIFOs, with
blocking-after-service semantics — a stage that finished an item holds
it (and stays busy) until the downstream FIFO has space.

Two implementations are provided:

* :class:`LinePipeline` computes the schedule with an exact recurrence,
  O(items x stages), which is what the accelerator models use.
* :class:`TickPipeline` simulates the same structure cycle by cycle and
  exists to *prove* the recurrence right: the property-based tests in
  ``tests/hw/test_pipeline_equivalence.py`` assert both produce
  identical schedules for arbitrary integer costs.

Recurrence (item ``i``, stage ``s``, FIFO ``s`` between ``s`` and
``s+1`` with capacity ``cap[s] >= 1``)::

    b[i][s] = max(e[i][s-1], e[i-1][s])        # start: item here & stage free
    d[i][s] = b[i][s] + cost[s](item_i)        # compute done
    e[i][s] = max(d[i][s], b[i-cap[s]][s+1])   # leave: downstream space
    e[i][-1] = arrival[i]                      # source
    e[i][last] = d[i][last]                    # sink never blocks

The FIFO-space term says: the slot item ``i`` needs frees up the moment
item ``i - cap[s]`` *starts* in stage ``s+1`` (is popped from the FIFO).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from .fifo import Fifo
from .kernel import SimError

CostFn = Callable[[Any], float]

#: Fault-injection hook: extra service cycles per ``(item_index,
#: stage_index)``, on top of the stage's cost function.  Produced by
#: :func:`repro.runtime.faults.pipeline_stalls` to model a stuck stage;
#: absent keys mean no stall.
StallMap = Mapping[tuple[int, int], float]


def _stalled_costs(costs: list[list[float]], stalls: StallMap | None) -> list[list[float]]:
    if not stalls:
        return costs
    for (i, s), extra in stalls.items():
        if extra < 0:
            raise SimError(f"negative stall {extra} (item {i}, stage {s})")
        if 0 <= i < len(costs) and 0 <= s < len(costs[i]):
            costs[i][s] += extra
    return costs


@dataclass
class StageSpec:
    """One pipeline stage: a name and a per-item service-time function."""

    name: str
    cost: CostFn


@dataclass
class PipelineSchedule:
    """Full timing of a pipeline run."""

    begin: list[list[float]]  # begin[i][s]
    done: list[list[float]]  # compute-complete
    exit: list[list[float]]  # leave stage (after any blocking)
    arrivals: list[float]

    @property
    def items(self) -> int:
        return len(self.begin)

    @property
    def stages(self) -> int:
        return len(self.begin[0]) if self.begin else 0

    def completion_times(self) -> list[float]:
        """Time each item left the final stage."""
        return [row[-1] for row in self.exit]

    def latencies(self) -> list[float]:
        """Per-item end-to-end latency (exit minus arrival)."""
        return [row[-1] - a for row, a in zip(self.exit, self.arrivals, strict=True)]

    def makespan(self) -> float:
        """Completion time of the last item (0 for an empty run)."""
        exits = self.completion_times()
        return max(exits, default=0.0)

    def throughput(self) -> float:
        """Items per cycle over the whole run (first arrival to last exit)."""
        if not self.begin:
            return 0.0
        span = self.makespan() - min(self.arrivals)
        return len(self.begin) / span if span > 0 else float("inf")

    def stage_busy(self, s: int) -> float:
        """Total busy time (compute + blocked) of stage ``s``."""
        return sum(e[s] - b[s] for b, e in zip(self.begin, self.exit, strict=True))

    def bubble_time(self, s: int) -> float:
        """Total blocked-after-service time of stage ``s`` — cycles spent
        holding finished items because downstream had no space."""
        return sum(e[s] - d[s] for d, e in zip(self.done, self.exit, strict=True))

    def trace(
        self,
        tracer,
        stage_names: Sequence[str] | None = None,
        *,
        tid: str = "pipeline",
        origin: float = 0.0,
    ) -> None:
        """Export the schedule into ``tracer`` post hoc (zero cost when
        untraced — the schedule is already exact).

        Each ``(item, stage)`` pair becomes a compute span (category
        ``hw.stage``) from begin to done, plus a ``<stage>!blocked``
        span (category ``hw.bubble``) over any blocked-after-service
        window — the backpressure bubbles, directly visible as gaps.
        ``origin`` shifts the schedule onto a caller's timeline.
        """
        if tracer is None or not getattr(tracer, "enabled", True):
            return
        names = (
            list(stage_names)
            if stage_names is not None
            else [f"stage{s}" for s in range(self.stages)]
        )
        if len(names) != self.stages:
            raise SimError(f"expected {self.stages} stage names, got {len(names)}")
        for i in range(self.items):
            for s, name in enumerate(names):
                b, d, e = self.begin[i][s], self.done[i][s], self.exit[i][s]
                tracer.add_span(
                    name,
                    origin + b,
                    origin + d,
                    cat="hw.stage",
                    tid=tid,
                    args={"item": i},
                )
                if e > d:
                    tracer.add_span(
                        f"{name}!blocked",
                        origin + d,
                        origin + e,
                        cat="hw.bubble",
                        tid=tid,
                        args={"item": i},
                    )


class LinePipeline:
    """Analytical blocking-pipeline timing model.

    Args:
        stages: Ordered stage specs.
        fifo_capacity: Either one capacity for all inter-stage FIFOs or
            a sequence of ``len(stages) - 1`` capacities, each >= 1.
    """

    def __init__(
        self,
        stages: Sequence[StageSpec],
        fifo_capacity: int | Sequence[int] = 2,
    ):
        if not stages:
            raise SimError("pipeline needs at least one stage")
        self.stages = list(stages)
        n_fifos = len(stages) - 1
        if isinstance(fifo_capacity, int):
            caps = [fifo_capacity] * n_fifos
        else:
            caps = list(fifo_capacity)
            if len(caps) != n_fifos:
                raise SimError(f"expected {n_fifos} fifo capacities, got {len(caps)}")
        if any(c < 1 for c in caps):
            raise SimError("fifo capacities must be >= 1")
        self.caps = caps

    def schedule(
        self,
        items: Sequence[Any],
        arrivals: Sequence[float] | None = None,
        stalls: StallMap | None = None,
    ) -> PipelineSchedule:
        """Compute the exact schedule for ``items``.

        ``arrivals`` defaults to all-zero (batch at time 0 = saturated
        throughput measurement); it must be non-decreasing.  ``stalls``
        injects extra service cycles per ``(item, stage)`` — the
        stuck-pipeline fault hook.
        """
        n = len(items)
        s_count = len(self.stages)
        if arrivals is None:
            arr = [0.0] * n
        else:
            arr = [float(a) for a in arrivals]
            if len(arr) != n:
                raise SimError("arrivals length must match items")
            if any(b < a for a, b in zip(arr, arr[1:], strict=False)):
                raise SimError("arrivals must be non-decreasing")

        begin = [[0.0] * s_count for _ in range(n)]
        done = [[0.0] * s_count for _ in range(n)]
        exit_ = [[0.0] * s_count for _ in range(n)]

        costs = [[float(spec.cost(it)) for spec in self.stages] for it in items]
        for i, row in enumerate(costs):
            for s, c in enumerate(row):
                if c < 0:
                    raise SimError(f"negative cost {c} (item {i}, stage {s})")
        costs = _stalled_costs(costs, stalls)

        for i in range(n):
            for s in range(s_count):
                avail = arr[i] if s == 0 else exit_[i][s - 1]
                stage_free = exit_[i - 1][s] if i > 0 else 0.0
                begin[i][s] = max(avail, stage_free)
                done[i][s] = begin[i][s] + costs[i][s]
                if s == s_count - 1:
                    exit_[i][s] = done[i][s]
                else:
                    cap = self.caps[s]
                    space_at = begin[i - cap][s + 1] if i >= cap else 0.0
                    exit_[i][s] = max(done[i][s], space_at)
        return PipelineSchedule(begin=begin, done=done, exit=exit_, arrivals=arr)


class TickPipeline:
    """Cycle-ticking reference implementation of the same semantics.

    Integer costs only.  Within each cycle, stage moves (push completed
    item downstream, pop next item) are iterated to a fixpoint so that
    an item can traverse a zero-occupancy path in one instant, matching
    the recurrence's instantaneous-transfer semantics.
    """

    def __init__(
        self,
        stages: Sequence[StageSpec],
        fifo_capacity: int | Sequence[int] = 2,
    ):
        self._line = LinePipeline(stages, fifo_capacity)  # reuse validation
        self.stages = self._line.stages
        self.caps = self._line.caps

    def schedule(
        self,
        items: Sequence[Any],
        arrivals: Sequence[float] | None = None,
        stalls: StallMap | None = None,
    ) -> PipelineSchedule:
        n = len(items)
        s_count = len(self.stages)
        arr = [0.0] * n if arrivals is None else [float(a) for a in arrivals]
        costs = [[int(spec.cost(it)) for spec in self.stages] for it in items]
        for row in costs:
            if any(c < 0 for c in row):
                raise SimError("negative cost")
        if stalls:
            for (i, s), extra in stalls.items():
                if extra < 0:
                    raise SimError(f"negative stall {extra} (item {i}, stage {s})")
                if 0 <= i < n and 0 <= s < s_count:
                    costs[i][s] += int(extra)

        begin = [[0.0] * s_count for _ in range(n)]
        done_t = [[0.0] * s_count for _ in range(n)]
        exit_t = [[0.0] * s_count for _ in range(n)]

        fifos = [Fifo(c, f"f{s}") for s, c in enumerate(self.caps)]
        # Stage state: (item_index, finish_cycle) or None; "holding" means
        # compute finished but blocked on downstream space.
        current: list[tuple[int, int] | None] = [None] * s_count
        holding: list[int | None] = [None] * s_count
        next_item = 0
        completed = 0
        cycle = 0
        guard = 0

        while completed < n:
            progress = True
            while progress:  # intra-cycle fixpoint
                progress = False
                for s in range(s_count - 1, -1, -1):
                    # Finish compute.
                    if current[s] is not None and current[s][1] <= cycle:
                        item, _ = current[s]
                        done_t[item][s] = current[s][1]
                        current[s] = None
                        holding[s] = item
                        progress = True
                    # Drain holding into downstream (or out of the pipe).
                    if holding[s] is not None:
                        item = holding[s]
                        if s == s_count - 1:
                            exit_t[item][s] = max(done_t[item][s], cycle)
                            holding[s] = None
                            completed += 1
                            progress = True
                        elif fifos[s].can_push():
                            exit_t[item][s] = cycle
                            fifos[s].push(item)
                            holding[s] = None
                            progress = True
                    # Start the next item.
                    if current[s] is None and holding[s] is None:
                        item = None
                        if s == 0:
                            if next_item < n and arr[next_item] <= cycle:
                                item = next_item
                                next_item += 1
                        elif fifos[s - 1].can_pop():
                            item = fifos[s - 1].pop()
                        if item is not None:
                            begin[item][s] = cycle
                            current[s] = (item, cycle + costs[item][s])
                            progress = True
            cycle += 1
            guard += 1
            if guard > 10_000_000:
                raise SimError("tick pipeline exceeded 10M cycles")
        return PipelineSchedule(begin=begin, done=done_t, exit=exit_t, arrivals=arr)
