"""A small DRAM timing model: banks, row buffers, refresh, queueing.

The paper's §5 observes that the hard part of accelerator performance
interfaces is often not the datapath but its interaction with memory:
Protoacc reads messages through a memory system, VTA streams tiles from
DRAM.  Our ground-truth models therefore include a DRAM model with
address-dependent latency; the *interfaces* summarize all of it as a
single ``avg_mem_latency`` constant, which is one of the organic error
sources tabulated in DESIGN.md §6.

Timing per access (one DRAM burst)::

    start    = max(issue_time, bank_available, end_of_refresh_window)
    service  = cas_latency + (row_hit ? 0 : row_miss_penalty)
               + burst_beats(size)
    complete = start + service

All parameters are in core clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramConfig:
    """Timing/geometry parameters (defaults resemble a modest DDR part)."""

    cas_latency: int = 14
    row_miss_penalty: int = 24
    banks: int = 8
    row_size: int = 2048  # bytes covered by one open row
    bytes_per_beat: int = 16
    refresh_interval: int = 7_800
    refresh_duration: int = 160

    def burst_beats(self, size: int) -> int:
        return max(1, -(-size // self.bytes_per_beat))

    def expected_latency(self, size: int = 64, hit_ratio: float = 0.6) -> float:
        """Analytic average an interface would quote as ``avg_mem_latency``.

        Accounts for the refresh duty cycle but not for queueing, which
        is workload-dependent — exactly the abstraction gap the paper's
        interfaces accept.
        """
        service = (
            self.cas_latency
            + (1.0 - hit_ratio) * self.row_miss_penalty
            + self.burst_beats(size)
        )
        refresh_overhead = self.refresh_duration / self.refresh_interval
        return service * (1.0 + refresh_overhead)


@dataclass
class _Bank:
    available: float = 0.0
    open_row: int = -1


class Dram:
    """Stateful DRAM: call :meth:`access` in non-decreasing time order
    per bank is not required — each access queues behind its bank.

    ``tracer`` (see :class:`repro.obs.Tracer`) records each access and
    stream as a span in category ``hw.dram``, with queueing/stall time
    visible as the gap between the request time and the span start.
    Models run their own 0-based local clock per call; ``trace_origin``
    shifts emitted spans onto the caller's timeline (a
    :class:`~repro.runtime.device.ResilientDevice` sets it to its
    serving clock before each invocation), so DRAM activity lines up
    under the offload that caused it.
    """

    def __init__(
        self,
        config: DramConfig | None = None,
        *,
        tracer=None,
        trace_origin: float = 0.0,
        trace_tid: str = "dram",
    ):
        self.config = config or DramConfig()
        self.tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self.trace_origin = trace_origin
        self.trace_tid = trace_tid
        self._banks = [_Bank() for _ in range(self.config.banks)]
        self._stream_available = 0.0
        self._stall_windows: list[tuple[float, float]] = []
        #: Cumulative statistics.
        self.accesses = 0
        self.row_hits = 0
        self.total_latency = 0.0

    def reset(self) -> None:
        """Clear dynamic state (banks, stream port, statistics).

        Injected stall windows survive a reset: they model externally
        imposed conditions, not controller state.  Use
        :meth:`clear_stall_windows` to remove them.
        """
        self._banks = [_Bank() for _ in range(self.config.banks)]
        self._stream_available = 0.0
        self.accesses = 0
        self.row_hits = 0
        self.total_latency = 0.0

    # ------------------------------------------------------------------
    # Fault-injection hook (used by repro.runtime.faults)
    # ------------------------------------------------------------------
    def add_stall_window(self, start: float, duration: float) -> None:
        """Declare ``[start, start + duration)`` as a window in which the
        controller issues nothing — a refresh storm, thermal throttle, or
        calibration pass.  Accesses and streams wanting to start inside
        the window are deferred to its end; in-flight transfers ride
        through (the storm gates *issue*, not completion)."""
        if start < 0 or duration <= 0:
            raise ValueError("stall window needs start >= 0 and duration > 0")
        self._stall_windows.append((start, start + duration))
        self._stall_windows.sort()
        if self.tracer is not None:
            origin = self.trace_origin
            self.tracer.add_span(
                "dram.stall_window",
                origin + start,
                origin + start + duration,
                cat="hw.dram",
                tid=self.trace_tid,
                args={"duration": duration},
            )

    def clear_stall_windows(self) -> None:
        self._stall_windows.clear()

    @property
    def stall_windows(self) -> tuple[tuple[float, float], ...]:
        return tuple(self._stall_windows)

    def _after_stalls(self, t: float) -> float:
        for start, end in self._stall_windows:
            if start <= t < end:
                t = end
        return t

    def _bank_and_row(self, addr: int) -> tuple[int, int]:
        cfg = self.config
        row = addr // cfg.row_size
        return row % cfg.banks, row // cfg.banks

    def _after_refresh(self, t: float) -> float:
        """Refresh windows occupy [k*interval, k*interval + duration) for
        k >= 1 (the controller issues the first refresh one interval after
        power-up, so time 0 starts clean)."""
        cfg = self.config
        if t < cfg.refresh_interval:
            return t
        phase = t % cfg.refresh_interval
        if phase < cfg.refresh_duration:
            return t + (cfg.refresh_duration - phase)
        return t

    def _issue_time(self, t: float) -> float:
        """Earliest instant >= ``t`` outside refresh and stall windows."""
        while True:
            t2 = self._after_refresh(self._after_stalls(t))
            if t2 == t:
                return t
            t = t2

    def access(self, addr: int, at: float, size: int = 64) -> float:
        """Issue one burst; returns the completion time."""
        if addr < 0 or size < 1:
            raise ValueError("addr must be >= 0 and size >= 1")
        cfg = self.config
        bank_idx, row = self._bank_and_row(addr)
        bank = self._banks[bank_idx]
        start = self._issue_time(max(at, bank.available))
        hit = bank.open_row == row
        service = cfg.cas_latency + (0 if hit else cfg.row_miss_penalty)
        service += cfg.burst_beats(size)
        complete = start + service
        bank.available = complete
        bank.open_row = row
        self.accesses += 1
        self.row_hits += int(hit)
        self.total_latency += complete - at
        if self.tracer is not None:
            origin = self.trace_origin
            self.tracer.add_span(
                "dram.access",
                origin + start,
                origin + complete,
                cat="hw.dram",
                tid=self.trace_tid,
                args={"bank": bank_idx, "hit": hit, "wait": start - at},
            )
        return complete

    def read_span(self, addr: int, at: float, size: int) -> float:
        """Stream ``size`` bytes starting at ``addr`` as row-sized bursts."""
        cfg = self.config
        t = at
        remaining = size
        cursor = addr
        while remaining > 0:
            chunk = min(remaining, cfg.row_size - cursor % cfg.row_size)
            t = self.access(cursor, t, chunk)
            cursor += chunk
            remaining -= chunk
        return t

    def stream(self, addr: int, at: float, size: int) -> float:
        """Bandwidth-bound sequential burst (prefetched, bank-interleaved).

        Unlike :meth:`access`, a stream overlaps row activations with
        data transfer: cost is one CAS, one beat per 16 B, a small 4-cycle
        re-activate bubble per row crossed after the first, plus any
        refresh windows the stream overlaps.  Streams share one prefetch
        port, so concurrent streams serialize behind ``_stream_available``.
        """
        if addr < 0 or size < 1:
            raise ValueError("addr must be >= 0 and size >= 1")
        cfg = self.config
        start = self._issue_time(max(at, self._stream_available))
        rows = (addr + size - 1) // cfg.row_size - addr // cfg.row_size
        duration = (
            cfg.cas_latency
            + cfg.row_miss_penalty
            + cfg.burst_beats(size)
            + rows * 4
        )
        # Refresh windows that open during the stream stall it fully.
        first_window = int(start // cfg.refresh_interval) + 1
        last_window = int((start + duration) // cfg.refresh_interval)
        duration += max(0, last_window - first_window + 1) * cfg.refresh_duration
        end = start + duration
        self._stream_available = end
        self.accesses += 1
        self.total_latency += end - at
        if self.tracer is not None:
            origin = self.trace_origin
            self.tracer.add_span(
                "dram.stream",
                origin + start,
                origin + end,
                cat="hw.dram",
                tid=self.trace_tid,
                args={"bytes": size, "rows": rows, "wait": start - at},
            )
        return end

    @property
    def hit_ratio(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0
