"""A TLB model: the paper's §5 example of environment interaction.

"Since co-processors like Protoacc access memory via the TLB, the Petri
net model would need to include the TLB state to be able to reason
precisely about memory access latencies."  This module provides that
state: a set-associative TLB with LRU replacement and a fixed-cost page
walk, used by the Protoacc model when constructed with
``ProtoaccSerializerModel(tlb_config=...)`` and by the §5 extension
benchmark that shows what happens to interface accuracy when the TLB is
(a) ignored and (b) modeled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class TlbConfig:
    """Geometry and timing (defaults: a small IOMMU-style unit)."""

    entries: int = 64
    ways: int = 4
    page_bits: int = 12          # 4 KiB pages
    hit_cycles: int = 1
    walk_cycles: int = 110       # 4-level walk, mostly cache-resident

    def __post_init__(self) -> None:
        if self.entries % self.ways:
            raise ValueError("entries must be a multiple of ways")

    @property
    def sets(self) -> int:
        return self.entries // self.ways


class Tlb:
    """Set-associative, LRU-replaced translation cache."""

    def __init__(self, config: TlbConfig | None = None):
        self.config = config or TlbConfig()
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.config.sets)
        ]
        self.lookups = 0
        self.misses = 0

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self.lookups = 0
        self.misses = 0

    def translate(self, vaddr: int, at: float) -> float:
        """Translate one access; returns the time translation completes."""
        if vaddr < 0:
            raise ValueError("vaddr must be >= 0")
        cfg = self.config
        page = vaddr >> cfg.page_bits
        entry_set = self._sets[page % cfg.sets]
        self.lookups += 1
        if page in entry_set:
            entry_set.move_to_end(page)
            return at + cfg.hit_cycles
        self.misses += 1
        entry_set[page] = None
        if len(entry_set) > cfg.ways:
            entry_set.popitem(last=False)
        return at + cfg.hit_cycles + cfg.walk_cycles

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0
