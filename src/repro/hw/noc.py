"""A shared-interconnect model (the paper's §5 SmartNIC concern).

"A Petri net for a SmartNIC will likely need to include a model of the
interconnect, since it can have a significant impact on performance."
This module provides the ground-truth side: a shared bus with FCFS
arbitration and *background traffic* (the other SmartNIC engines), plus
the component-interface side: a closed-form expected-waiting estimate
an accelerator interface can compose with (M/D/1 queueing, since bus
service times are near-deterministic).

The Protoacc model accepts a ``bus_config`` so every DMA transaction
arbitrates here before reaching DRAM — see the E13 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BusConfig:
    """Interconnect parameters.

    Attributes:
        bytes_per_cycle: Transfer bandwidth.
        grant_overhead: Arbitration cycles per transaction.
        background_utilization: Fraction of bus capacity consumed by
            other engines' traffic (0 = idle interconnect).
        background_packet: Size of one background transaction, bytes.
        seed: Background arrival process seed (deterministic runs).
    """

    bytes_per_cycle: float = 16.0
    grant_overhead: float = 4.0
    background_utilization: float = 0.0
    background_packet: int = 256
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_utilization < 0.95:
            raise ValueError("background_utilization must be in [0, 0.95)")
        if self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")

    def service_time(self, size: int) -> float:
        return self.grant_overhead + size / self.bytes_per_cycle


class SharedBus:
    """FCFS bus with a deterministic background-traffic process."""

    def __init__(self, config: BusConfig | None = None):
        self.config = config or BusConfig()
        self._busy_until = 0.0
        self._rng = np.random.default_rng(self.config.seed)
        self._next_background = self._draw_gap()
        #: Statistics.
        self.requests = 0
        self.total_wait = 0.0

    def _draw_gap(self) -> float:
        cfg = self.config
        if cfg.background_utilization == 0:
            return float("inf")
        mean_gap = cfg.service_time(cfg.background_packet) / cfg.background_utilization
        return float(self._rng.exponential(mean_gap))

    def _absorb_background(self, until: float) -> None:
        cfg = self.config
        while self._next_background <= until:
            start = max(self._next_background, self._busy_until)
            self._busy_until = start + cfg.service_time(cfg.background_packet)
            self._next_background += self._draw_gap()

    def request(self, at: float, size: int) -> float:
        """Arbitrate one transaction; returns when its transfer completes.

        Must be called with non-decreasing ``at`` (one requester port;
        the accelerator's DMA engine is serial anyway).
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        self._absorb_background(at)
        grant = max(at, self._busy_until)
        done = grant + self.config.service_time(size)
        self._busy_until = done
        self.requests += 1
        self.total_wait += grant - at
        return done

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.requests if self.requests else 0.0


def expected_bus_delay(size: int, config: BusConfig) -> float:
    """The interconnect's *component interface*: expected cycles one
    transaction spends at the bus (queueing + service).

    Queueing uses the M/D/1 mean wait for the background load,
    W = rho * S / (2 * (1 - rho)): background arrivals are memoryless,
    service is deterministic.
    """
    rho = config.background_utilization
    service_bg = config.service_time(config.background_packet)
    wait = rho * service_bg / (2 * (1 - rho)) if rho else 0.0
    return wait + config.service_time(size)
