"""Summary statistics shared by models, validation, and benchmarks."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def of(cls, values: Sequence[float]) -> Summary:
        if len(values) == 0:
            raise ValueError("cannot summarize an empty sample")
        arr = np.asarray(values, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} min={self.minimum:.3f} "
            f"p50={self.p50:.3f} p95={self.p95:.3f} p99={self.p99:.3f} "
            f"max={self.maximum:.3f}"
        )


def relative_error(predicted: float, actual: float) -> float:
    """|predicted - actual| / actual, with a guard for zero actuals."""
    if actual == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - actual) / abs(actual)


def relative_errors(
    predicted: Sequence[float], actual: Sequence[float]
) -> np.ndarray:
    """Vectorized relative errors; lengths must match."""
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have the same length")
    p = np.asarray(predicted, dtype=float)
    a = np.asarray(actual, dtype=float)
    out = np.empty_like(a)
    zero = a == 0
    out[~zero] = np.abs(p[~zero] - a[~zero]) / np.abs(a[~zero])
    out[zero] = np.where(p[zero] == 0, 0.0, np.inf)
    return out


@dataclass(frozen=True)
class ErrorReport:
    """Average/max relative error between predictions and ground truth.

    ``p50``/``p95``/``p99`` are quantiles of the per-item error
    distribution; they are what downstream consumers that must set
    *thresholds* on healthy error (e.g. the serving runtime's drift
    detector, see :func:`repro.runtime.degrade.derive_drift_threshold`)
    should read — the average hides the tail and the max is one outlier.
    ``None`` on reports built before quantiles existed.
    """

    avg: float
    max: float
    count: int
    p50: float | None = None
    p95: float | None = None
    p99: float | None = None

    @classmethod
    def of(cls, predicted: Sequence[float], actual: Sequence[float]) -> ErrorReport:
        errs = relative_errors(predicted, actual)
        finite = errs[np.isfinite(errs)]
        quantiles = (
            tuple(float(np.percentile(finite, q)) for q in (50, 95, 99))
            if finite.size
            else (None, None, None)
        )
        return cls(
            avg=float(errs.mean()),
            max=float(errs.max()),
            count=int(errs.size),
            p50=quantiles[0],
            p95=quantiles[1],
            p99=quantiles[2],
        )

    def as_percent(self) -> str:
        return f"avg {self.avg * 100:.2f}% (max {self.max * 100:.2f}%) over n={self.count}"
