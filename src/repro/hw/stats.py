"""Summary statistics shared by models, validation, and benchmarks."""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def of(cls, values: Sequence[float]) -> Summary:
        if len(values) == 0:
            raise ValueError("cannot summarize an empty sample")
        arr = np.asarray(values, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
        )

    @classmethod
    def merge(cls, *summaries: Summary) -> Summary:
        """Fold summaries of disjoint windows into one.

        ``count``/``mean``/``minimum``/``maximum`` merge *exactly*.
        The quantiles are count-weighted averages of the inputs'
        quantiles — exact when the windows are identically distributed,
        an approximation otherwise (a drift observatory folding
        per-window summaries accepts that; pair with a
        :class:`Reservoir` when accurate tails matter).
        """
        if not summaries:
            raise ValueError("cannot merge zero summaries")
        total = sum(s.count for s in summaries)
        if total == 0:
            raise ValueError("cannot merge empty summaries")

        def weighted(attr: str) -> float:
            return sum(getattr(s, attr) * s.count for s in summaries) / total

        return cls(
            count=total,
            mean=weighted("mean"),
            minimum=min(s.minimum for s in summaries),
            maximum=max(s.maximum for s in summaries),
            p50=weighted("p50"),
            p95=weighted("p95"),
            p99=weighted("p99"),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} min={self.minimum:.3f} "
            f"p50={self.p50:.3f} p95={self.p95:.3f} p99={self.p99:.3f} "
            f"max={self.maximum:.3f}"
        )


class Reservoir:
    """Seeded streaming uniform sample (Vitter's Algorithm R).

    Keeps at most ``capacity`` of the values seen so far, each with
    equal probability, in O(capacity) memory — the accurate-quantile
    companion to :meth:`Summary.merge`'s approximate folding.
    Deterministic for a given seed and input order.
    """

    __slots__ = ("capacity", "seen", "_values", "_rng")

    def __init__(self, capacity: int = 256, *, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.seen = 0
        self._values: list[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        j = self._rng.randrange(self.seen)
        if j < self.capacity:
            self._values[j] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def values(self) -> list[float]:
        """The current sample (a copy, in slot order)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def summary(self) -> Summary:
        """Summary of the *sample*; ``count`` reports the sample size,
        :attr:`seen` has the stream size."""
        return Summary.of(self._values)


def relative_error(predicted: float, actual: float) -> float:
    """|predicted - actual| / actual, with a guard for zero actuals."""
    if actual == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - actual) / abs(actual)


def relative_errors(
    predicted: Sequence[float], actual: Sequence[float]
) -> np.ndarray:
    """Vectorized :func:`relative_error`; lengths must match.

    Zero actuals follow the scalar guard (0 when the prediction is also
    0, ``inf`` otherwise) instead of numpy's divide-by-zero path — no
    ``nan``, no runtime warnings, element-for-element agreement with
    the scalar.
    """
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have the same length")
    p = np.asarray(predicted, dtype=float)
    a = np.asarray(actual, dtype=float)
    out = np.empty_like(a)
    zero = a == 0
    nonzero = ~zero
    out[nonzero] = np.abs(p[nonzero] - a[nonzero]) / np.abs(a[nonzero])
    out[zero] = np.where(p[zero] == 0, 0.0, np.inf)
    return out


@dataclass(frozen=True)
class ErrorReport:
    """Average/max relative error between predictions and ground truth.

    ``p50``/``p95``/``p99`` are quantiles of the per-item error
    distribution; they are what downstream consumers that must set
    *thresholds* on healthy error (e.g. the serving runtime's drift
    detector, see :func:`repro.runtime.degrade.derive_drift_threshold`)
    should read — the average hides the tail and the max is one outlier.
    ``None`` on reports built before quantiles existed.

    ``infinite`` counts items whose error is unbounded (a nonzero
    prediction against a zero actual).  ``avg``/``max`` cover only the
    *finite* errors, so one degenerate pair cannot silently turn the
    whole report into ``inf`` — the degenerate pairs are reported by
    count instead of by poisoning the aggregates.
    """

    avg: float
    max: float
    count: int
    p50: float | None = None
    p95: float | None = None
    p99: float | None = None
    infinite: int = 0

    @classmethod
    def of(cls, predicted: Sequence[float], actual: Sequence[float]) -> ErrorReport:
        errs = relative_errors(predicted, actual)
        finite = errs[np.isfinite(errs)]
        quantiles = (
            tuple(float(np.percentile(finite, q)) for q in (50, 95, 99))
            if finite.size
            else (None, None, None)
        )
        return cls(
            avg=float(finite.mean()) if finite.size else 0.0,
            max=float(finite.max()) if finite.size else 0.0,
            count=int(errs.size),
            p50=quantiles[0],
            p95=quantiles[1],
            p99=quantiles[2],
            infinite=int(errs.size - finite.size),
        )

    def as_percent(self) -> str:
        text = f"avg {self.avg * 100:.2f}% (max {self.max * 100:.2f}%) over n={self.count}"
        if self.infinite:
            text += f" [{self.infinite} unbounded]"
        return text
