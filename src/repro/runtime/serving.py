"""Open-loop serving on top of the device pool.

The §5 estimators and the E14 degradation benchmark drive devices
*closed-loop*: the next request starts when the previous one finishes,
so overload is invisible.  Real RPC servers are open-loop — requests
arrive when clients send them (Poisson arrivals,
:meth:`~repro.workloads.rpc.RpcMix.sample_open`), and when the fleet
cannot keep up the server must *drop* work, not pretend time stopped.

:class:`OpenLoopServer` is that front end, simulated event-driven on
the pool's virtual clocks:

* a **bounded admission queue** — an arrival finding the queue full is
  dropped on the floor immediately (``dropped``);
* **deadline shedding** — a queued request whose age exceeds the
  deadline by the time a dispatch slot frees is shed *without ever
  touching a device* (``shed``), so a backlogged fleet spends its
  cycles only on requests that can still make it;
* a **dispatch width** — at most ``max_inflight`` requests
  outstanding across the pool; freed slots pull from the queue in FIFO
  order and route through the pool's policy
  (:mod:`repro.runtime.pool`), hedging included.

The output (:class:`ServeResult`) carries every admitted request's
:class:`~repro.runtime.pool.PoolResult` plus the drop/shed ledger, so
a rate sweep yields the drop-rate/latency tradeoff curves the E15
benchmark tabulates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Generic, TypeVar

from repro.hw.stats import Summary

from .pool import DevicePool, PoolResult

RequestT = TypeVar("RequestT")


@dataclass(frozen=True)
class Rejection(Generic[RequestT]):
    """A request the server refused to serve."""

    request: RequestT
    arrival: float
    time: float  # when the refusal happened
    reason: str  # "queue full" or "deadline exceeded"


@dataclass
class ServeResult(Generic[RequestT]):
    """One open-loop run: who was served, who was refused, and how."""

    offered: int
    served: list[PoolResult[RequestT]] = field(default_factory=list)
    dropped: list[Rejection[RequestT]] = field(default_factory=list)  # queue full
    shed: list[Rejection[RequestT]] = field(default_factory=list)  # too old

    @property
    def answered(self) -> list[PoolResult[RequestT]]:
        return [r for r in self.served if r.ok]

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests that never got an answer
        (queue-full drops, deadline sheds, and pool-level failures)."""
        if self.offered == 0:
            return 0.0
        failed = sum(not r.ok for r in self.served)
        return (len(self.dropped) + len(self.shed) + failed) / self.offered

    def latency_summary(self) -> Summary:
        return Summary.of([r.cycles for r in self.answered])

    def hedge_count(self) -> int:
        return sum(r.hedges for r in self.served)


class OpenLoopServer(Generic[RequestT]):
    """Poisson-arrival front end over a :class:`DevicePool`.

    Args:
        pool: the routing fleet; its policy and breakers do the rest.
        queue_limit: admission-queue capacity; arrivals beyond it drop.
        deadline: relative per-request deadline in cycles.  Checked at
            dequeue (a request older than this is shed un-dispatched)
            and passed through to the pool so hedging stops once a
            request is already late.  ``None`` disables shedding.
        max_inflight: dispatch width — outstanding requests across the
            fleet.  Defaults to two per device, enough backlog for the
            queue-aware policies to have something to see.
    """

    def __init__(
        self,
        pool: DevicePool,
        *,
        queue_limit: int = 64,
        deadline: float | None = None,
        max_inflight: int | None = None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.pool = pool
        self.queue_limit = queue_limit
        self.deadline = deadline
        self.max_inflight = (
            max_inflight if max_inflight is not None else 2 * len(pool.devices)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")

    def run(
        self,
        requests: list[RequestT],
        arrivals: list[float],
    ) -> ServeResult[RequestT]:
        """Serve the open-loop trace (absolute Poisson arrival times,
        e.g. from ``RpcMix.sample_open``) to completion."""
        if len(requests) != len(arrivals):
            raise ValueError("requests and arrivals must align")
        result: ServeResult[RequestT] = ServeResult(offered=len(requests))
        waiting: deque[tuple[float, RequestT]] = deque()
        inflight: list[float] = []  # min-heap of completion times

        def pump(now: float) -> None:
            """Pull from the queue while dispatch slots are free."""
            while waiting and len(inflight) < self.max_inflight:
                arrived, request = waiting.popleft()
                start = max(now, arrived)
                if self.deadline is not None and start - arrived > self.deadline:
                    result.shed.append(
                        Rejection(request, arrived, start, "deadline exceeded")
                    )
                    continue
                absolute = arrived + self.deadline if self.deadline else None
                served = self.pool.dispatch(request, start, deadline=absolute)
                result.served.append(served)
                heappush(inflight, served.completed)

        def retire(until: float) -> None:
            """Free completed slots up to ``until``, pumping at each."""
            while inflight and inflight[0] <= until:
                pump(heappop(inflight))

        for request, arrived in zip(requests, arrivals, strict=True):
            retire(arrived)
            if len(waiting) >= self.queue_limit:
                result.dropped.append(
                    Rejection(request, arrived, arrived, "queue full")
                )
                continue
            waiting.append((arrived, request))
            pump(arrived)

        while inflight or waiting:  # drain: no more arrivals
            if inflight:
                pump(heappop(inflight))
            else:  # every slot free: the rest of the queue pumps out
                pump(waiting[0][0])
        return result
