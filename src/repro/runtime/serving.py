"""Open-loop serving on top of the device pool.

The §5 estimators and the E14 degradation benchmark drive devices
*closed-loop*: the next request starts when the previous one finishes,
so overload is invisible.  Real RPC servers are open-loop — requests
arrive when clients send them (Poisson arrivals,
:meth:`~repro.workloads.rpc.RpcMix.sample_open`), and when the fleet
cannot keep up the server must *drop* work, not pretend time stopped.

:class:`OpenLoopServer` is that front end, simulated event-driven on
the pool's virtual clocks:

* a **bounded admission queue** — an arrival finding the queue full is
  dropped on the floor immediately (``dropped``);
* **deadline shedding** — a queued request whose age exceeds the
  deadline by the time a dispatch slot frees is shed *without ever
  touching a device* (``shed``), so a backlogged fleet spends its
  cycles only on requests that can still make it;
* a **dispatch width** — at most ``max_inflight`` requests
  outstanding across the pool; freed slots pull from the queue in FIFO
  order and route through the pool's policy
  (:mod:`repro.runtime.pool`), hedging included.

The output (:class:`ServeResult`) carries every admitted request's
:class:`~repro.runtime.pool.PoolResult` plus the drop/shed ledger, so
a rate sweep yields the drop-rate/latency tradeoff curves the E15
benchmark tabulates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Generic, TypeVar

from repro.hw.stats import Summary

from .pool import DevicePool, PoolResult

RequestT = TypeVar("RequestT")

# ----------------------------------------------------------------------
# Rejection reasons.  Every refusal carries exactly one of these named
# constants (free-text reasons drift apart between emitters and make
# the `reason` metric label unaggregatable).
# ----------------------------------------------------------------------
#: The admission queue was full when the request arrived.
REASON_QUEUE_FULL = "queue_full"
#: The request aged past its deadline before a dispatch slot freed.
REASON_DEADLINE_EXCEEDED = "deadline_exceeded"
#: Brownout: the ladder is shedding this request's priority class.
REASON_PRIORITY_SHED = "priority_shed"
#: Brownout: the ladder is rejecting (almost) everything at admission.
REASON_ADMISSION_REJECTED = "admission_rejected"

#: All reasons a :class:`Rejection` may carry.
REJECTION_REASONS = (
    REASON_QUEUE_FULL,
    REASON_DEADLINE_EXCEEDED,
    REASON_PRIORITY_SHED,
    REASON_ADMISSION_REJECTED,
)

#: Priority class assigned when no ``priority_fn`` is configured.
DEFAULT_PRIORITY = "normal"


@dataclass(frozen=True)
class Rejection(Generic[RequestT]):
    """A request the server refused to serve."""

    request: RequestT
    arrival: float
    time: float  # when the refusal happened
    reason: str  # one of :data:`REJECTION_REASONS`
    priority: str = DEFAULT_PRIORITY  # the request's priority class


@dataclass(frozen=True)
class RequestBreakdown:
    """Where one served request's end-to-end cycles went.

    The four components partition the wall exactly:
    ``queue_wait + device_queue + service + retry == completed - arrival``
    (asserted in ``tests/runtime/test_serving.py``).  ``queue_wait`` is
    server-side (admission queue + dispatch-width backlog before the
    pool ever saw the request); the rest is the pool-side decomposition
    from :class:`~repro.runtime.pool.PoolResult`.
    """

    arrival: float
    completed: float
    queue_wait: float  # admission queue, before dispatch
    device_queue: float  # device FIFO backlog, after dispatch
    service: float  # the successful attempt / fallback work
    retry: float  # failed attempts, backoff, watchdog waits, hedging

    @property
    def end_to_end(self) -> float:
        return self.completed - self.arrival

    @property
    def total(self) -> float:
        """Sum of the components; equals :attr:`end_to_end`."""
        return self.queue_wait + self.device_queue + self.service + self.retry


@dataclass
class ServeResult(Generic[RequestT]):
    """One open-loop run: who was served, who was refused, and how."""

    offered: int
    served: list[PoolResult[RequestT]] = field(default_factory=list)
    dropped: list[Rejection[RequestT]] = field(default_factory=list)  # queue full
    shed: list[Rejection[RequestT]] = field(default_factory=list)  # too old
    #: Aligned 1:1 with :attr:`served`.
    breakdowns: list[RequestBreakdown] = field(default_factory=list)

    @property
    def answered(self) -> list[PoolResult[RequestT]]:
        return [r for r in self.served if r.ok]

    @property
    def losses(self) -> int:
        """Requests that never got an answer.  The three loss ledgers
        are disjoint by construction — a rejected request (``dropped``
        or ``shed``) never reaches the pool, and a pool-level
        ``path="failed"`` result appears only in ``served`` — so each
        lost request is counted exactly once (regression-tested in
        ``tests/runtime/test_serving.py``)."""
        failed = sum(not r.ok for r in self.served)
        return len(self.dropped) + len(self.shed) + failed

    @property
    def loss_rate(self) -> float:
        """Fraction of offered requests that never got an answer
        (queue-full drops, deadline/brownout sheds, and pool-level
        failures).  An empty run has lost nothing."""
        if self.offered == 0:
            return 0.0
        return self.losses / self.offered

    @property
    def drop_rate(self) -> float:
        """Deprecated alias of :attr:`loss_rate` (the historical name
        conflated queue-full drops with the other loss kinds)."""
        return self.loss_rate

    def latency_summary(self) -> Summary:
        return Summary.of([r.cycles for r in self.answered])

    def hedge_count(self) -> int:
        return sum(r.hedges for r in self.served)


class OpenLoopServer(Generic[RequestT]):
    """Poisson-arrival front end over a :class:`DevicePool`.

    Args:
        pool: the routing fleet; its policy and breakers do the rest.
        queue_limit: admission-queue capacity; arrivals beyond it drop.
        deadline: relative per-request deadline in cycles.  Checked at
            dequeue (a request older than this is shed un-dispatched)
            and passed through to the pool so hedging stops once a
            request is already late.  ``None`` disables shedding.
        max_inflight: dispatch width — outstanding requests across the
            fleet.  Defaults to two per device, enough backlog for the
            queue-aware policies to have something to see.
        priority_fn: maps a request to its priority class label (e.g.
            ``"low"``/``"normal"``/``"high"``).  The label rides on
            every :class:`Rejection` and is what brownout
            priority-shedding keys on.  ``None`` labels everything
            :data:`DEFAULT_PRIORITY`.
        controller: optional live control plane (duck-typed; see
            :class:`repro.scale.ScaleController`).  The server calls,
            when present: ``attach(server)`` once at construction,
            ``tick(now, queue_depth)`` at every arrival,
            ``admission_reason(request, priority, now, queue_depth)``
            before enqueueing (a non-``None`` reason refuses the
            request), ``observe(result, breakdown)`` after each
            dispatch, and ``observe_loss(reason, now)`` on each
            refusal.  All methods are optional.
        obs: :class:`repro.obs.Obs` bundle; defaults to the pool's own.
            The server emits admission-queue-wait spans and shed/drop
            instants into the tracer and outcome counters into the
            metrics registry.
    """

    def __init__(
        self,
        pool: DevicePool,
        *,
        queue_limit: int = 64,
        deadline: float | None = None,
        max_inflight: int | None = None,
        priority_fn=None,
        controller=None,
        obs=None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.pool = pool
        self.queue_limit = queue_limit
        self.deadline = deadline
        self.max_inflight = (
            max_inflight if max_inflight is not None else 2 * len(pool.devices)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.priority_fn = priority_fn
        self.controller = controller
        self.obs = obs if obs is not None else getattr(pool, "obs", None)
        tracer = getattr(self.obs, "tracer", None)
        self._tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._metrics = getattr(self.obs, "metrics", None)
        self._tsdb = getattr(self.obs, "tsdb", None)
        attach = getattr(controller, "attach", None)
        if attach is not None:
            attach(self)

    def run(
        self,
        requests: list[RequestT],
        arrivals: list[float],
    ) -> ServeResult[RequestT]:
        """Serve the open-loop trace (absolute Poisson arrival times,
        e.g. from ``RpcMix.sample_open``) to completion."""
        if len(requests) != len(arrivals):
            raise ValueError("requests and arrivals must align")
        result: ServeResult[RequestT] = ServeResult(offered=len(requests))
        waiting: deque[tuple[float, RequestT, str]] = deque()
        inflight: list[float] = []  # min-heap of completion times
        tracer = self._tracer
        metrics = self._metrics
        controller = self.controller
        observe = getattr(controller, "observe", None)
        observe_loss = getattr(controller, "observe_loss", None)
        admission_reason = getattr(controller, "admission_reason", None)
        ctick = getattr(controller, "tick", None)

        def count(outcome: str, reason: str | None = None) -> None:
            if metrics is not None:
                labels = {"outcome": outcome}
                if reason is not None:
                    labels["reason"] = reason
                metrics.counter("server_requests_total", **labels).inc()

        def lost(kind: str, rejection: Rejection[RequestT]) -> None:
            """Record one refusal everywhere it is consumed."""
            outcome = "shed" if kind == "shed" else "dropped"
            if tracer is not None:
                tracer.instant(
                    kind,
                    rejection.time,
                    cat="runtime.server",
                    tid="server",
                    args={
                        "reason": rejection.reason,
                        "priority": rejection.priority,
                        "waited": rejection.time - rejection.arrival,
                    },
                )
            count(outcome, rejection.reason)
            if observe_loss is not None:
                observe_loss(rejection.reason, rejection.time)

        def pump(now: float) -> None:
            """Pull from the queue while dispatch slots are free."""
            while waiting and len(inflight) < self.max_inflight:
                arrived, request, priority = waiting.popleft()
                start = max(now, arrived)
                if self.deadline is not None and start - arrived > self.deadline:
                    rejection = Rejection(
                        request, arrived, start, REASON_DEADLINE_EXCEEDED, priority
                    )
                    result.shed.append(rejection)
                    lost("shed", rejection)
                    continue
                if tracer is not None and start > arrived:
                    tracer.add_span(
                        "admission_wait",
                        arrived,
                        start,
                        cat="runtime.server",
                        tid="server",
                    )
                absolute = arrived + self.deadline if self.deadline else None
                served = self.pool.dispatch(request, start, deadline=absolute)
                result.served.append(served)
                breakdown = RequestBreakdown(
                    arrival=arrived,
                    completed=served.completed,
                    queue_wait=start - arrived,
                    device_queue=served.queue_cycles,
                    service=served.service_cycles,
                    retry=served.retry_cycles,
                )
                result.breakdowns.append(breakdown)
                if metrics is not None:
                    metrics.histogram("server_queue_wait_cycles").observe(
                        start - arrived
                    )
                count("served" if served.ok else "failed")
                if observe is not None:
                    observe(served, breakdown)
                heappush(inflight, served.completed)

        def retire(until: float) -> None:
            """Free completed slots up to ``until``, pumping at each."""
            while inflight and inflight[0] <= until:
                pump(heappop(inflight))

        tsdb = self._tsdb
        for request, arrived in zip(requests, arrivals, strict=True):
            retire(arrived)
            if tsdb is not None:
                # Throttled: one float comparison per arrival when it is
                # too early to fold another metrics snapshot.
                tsdb.maybe_pump(metrics, arrived)
                tsdb.record("server_queue_depth", arrived, len(waiting))
            priority = (
                self.priority_fn(request)
                if self.priority_fn is not None
                else DEFAULT_PRIORITY
            )
            if ctick is not None:
                ctick(arrived, len(waiting))
            if admission_reason is not None:
                reason = admission_reason(request, priority, arrived, len(waiting))
                if reason is not None:
                    rejection = Rejection(request, arrived, arrived, reason, priority)
                    # Brownout sheds a class on purpose; everything else
                    # refused at the door is a drop.
                    if reason == REASON_PRIORITY_SHED:
                        result.shed.append(rejection)
                        lost("shed", rejection)
                    else:
                        result.dropped.append(rejection)
                        lost("drop", rejection)
                    continue
            if len(waiting) >= self.queue_limit:
                rejection = Rejection(
                    request, arrived, arrived, REASON_QUEUE_FULL, priority
                )
                result.dropped.append(rejection)
                lost("drop", rejection)
                continue
            waiting.append((arrived, request, priority))
            pump(arrived)

        while inflight or waiting:  # drain: no more arrivals
            if inflight:
                pump(heappop(inflight))
            else:  # every slot free: the rest of the queue pumps out
                pump(waiting[0][0])
        if tsdb is not None:
            # Final fold so the stored run ends at the run's end state.
            last = max((r.completed for r in result.served), default=0.0)
            tsdb.pump(metrics, last)
        return result
