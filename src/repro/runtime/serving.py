"""Open-loop serving on top of the device pool.

The §5 estimators and the E14 degradation benchmark drive devices
*closed-loop*: the next request starts when the previous one finishes,
so overload is invisible.  Real RPC servers are open-loop — requests
arrive when clients send them (Poisson arrivals,
:meth:`~repro.workloads.rpc.RpcMix.sample_open`), and when the fleet
cannot keep up the server must *drop* work, not pretend time stopped.

:class:`OpenLoopServer` is that front end, simulated event-driven on
the pool's virtual clocks:

* a **bounded admission queue** — an arrival finding the queue full is
  dropped on the floor immediately (``dropped``);
* **deadline shedding** — a queued request whose age exceeds the
  deadline by the time a dispatch slot frees is shed *without ever
  touching a device* (``shed``), so a backlogged fleet spends its
  cycles only on requests that can still make it;
* a **dispatch width** — at most ``max_inflight`` requests
  outstanding across the pool; freed slots pull from the queue in FIFO
  order and route through the pool's policy
  (:mod:`repro.runtime.pool`), hedging included.

The output (:class:`ServeResult`) carries every admitted request's
:class:`~repro.runtime.pool.PoolResult` plus the drop/shed ledger, so
a rate sweep yields the drop-rate/latency tradeoff curves the E15
benchmark tabulates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Generic, TypeVar

from repro.hw.stats import Summary

from .pool import DevicePool, PoolResult

RequestT = TypeVar("RequestT")


@dataclass(frozen=True)
class Rejection(Generic[RequestT]):
    """A request the server refused to serve."""

    request: RequestT
    arrival: float
    time: float  # when the refusal happened
    reason: str  # "queue full" or "deadline exceeded"


@dataclass(frozen=True)
class RequestBreakdown:
    """Where one served request's end-to-end cycles went.

    The four components partition the wall exactly:
    ``queue_wait + device_queue + service + retry == completed - arrival``
    (asserted in ``tests/runtime/test_serving.py``).  ``queue_wait`` is
    server-side (admission queue + dispatch-width backlog before the
    pool ever saw the request); the rest is the pool-side decomposition
    from :class:`~repro.runtime.pool.PoolResult`.
    """

    arrival: float
    completed: float
    queue_wait: float  # admission queue, before dispatch
    device_queue: float  # device FIFO backlog, after dispatch
    service: float  # the successful attempt / fallback work
    retry: float  # failed attempts, backoff, watchdog waits, hedging

    @property
    def end_to_end(self) -> float:
        return self.completed - self.arrival

    @property
    def total(self) -> float:
        """Sum of the components; equals :attr:`end_to_end`."""
        return self.queue_wait + self.device_queue + self.service + self.retry


@dataclass
class ServeResult(Generic[RequestT]):
    """One open-loop run: who was served, who was refused, and how."""

    offered: int
    served: list[PoolResult[RequestT]] = field(default_factory=list)
    dropped: list[Rejection[RequestT]] = field(default_factory=list)  # queue full
    shed: list[Rejection[RequestT]] = field(default_factory=list)  # too old
    #: Aligned 1:1 with :attr:`served`.
    breakdowns: list[RequestBreakdown] = field(default_factory=list)

    @property
    def answered(self) -> list[PoolResult[RequestT]]:
        return [r for r in self.served if r.ok]

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests that never got an answer
        (queue-full drops, deadline sheds, and pool-level failures)."""
        if self.offered == 0:
            return 0.0
        failed = sum(not r.ok for r in self.served)
        return (len(self.dropped) + len(self.shed) + failed) / self.offered

    def latency_summary(self) -> Summary:
        return Summary.of([r.cycles for r in self.answered])

    def hedge_count(self) -> int:
        return sum(r.hedges for r in self.served)


class OpenLoopServer(Generic[RequestT]):
    """Poisson-arrival front end over a :class:`DevicePool`.

    Args:
        pool: the routing fleet; its policy and breakers do the rest.
        queue_limit: admission-queue capacity; arrivals beyond it drop.
        deadline: relative per-request deadline in cycles.  Checked at
            dequeue (a request older than this is shed un-dispatched)
            and passed through to the pool so hedging stops once a
            request is already late.  ``None`` disables shedding.
        max_inflight: dispatch width — outstanding requests across the
            fleet.  Defaults to two per device, enough backlog for the
            queue-aware policies to have something to see.
        obs: :class:`repro.obs.Obs` bundle; defaults to the pool's own.
            The server emits admission-queue-wait spans and shed/drop
            instants into the tracer and outcome counters into the
            metrics registry.
    """

    def __init__(
        self,
        pool: DevicePool,
        *,
        queue_limit: int = 64,
        deadline: float | None = None,
        max_inflight: int | None = None,
        obs=None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.pool = pool
        self.queue_limit = queue_limit
        self.deadline = deadline
        self.max_inflight = (
            max_inflight if max_inflight is not None else 2 * len(pool.devices)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.obs = obs if obs is not None else getattr(pool, "obs", None)
        tracer = getattr(self.obs, "tracer", None)
        self._tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._metrics = getattr(self.obs, "metrics", None)

    def run(
        self,
        requests: list[RequestT],
        arrivals: list[float],
    ) -> ServeResult[RequestT]:
        """Serve the open-loop trace (absolute Poisson arrival times,
        e.g. from ``RpcMix.sample_open``) to completion."""
        if len(requests) != len(arrivals):
            raise ValueError("requests and arrivals must align")
        result: ServeResult[RequestT] = ServeResult(offered=len(requests))
        waiting: deque[tuple[float, RequestT]] = deque()
        inflight: list[float] = []  # min-heap of completion times
        tracer = self._tracer
        metrics = self._metrics

        def count(outcome: str) -> None:
            if metrics is not None:
                metrics.counter("server_requests_total", outcome=outcome).inc()

        def pump(now: float) -> None:
            """Pull from the queue while dispatch slots are free."""
            while waiting and len(inflight) < self.max_inflight:
                arrived, request = waiting.popleft()
                start = max(now, arrived)
                if self.deadline is not None and start - arrived > self.deadline:
                    result.shed.append(
                        Rejection(request, arrived, start, "deadline exceeded")
                    )
                    if tracer is not None:
                        tracer.instant(
                            "shed",
                            start,
                            cat="runtime.server",
                            tid="server",
                            args={"waited": start - arrived},
                        )
                    count("shed")
                    continue
                if tracer is not None and start > arrived:
                    tracer.add_span(
                        "admission_wait",
                        arrived,
                        start,
                        cat="runtime.server",
                        tid="server",
                    )
                absolute = arrived + self.deadline if self.deadline else None
                served = self.pool.dispatch(request, start, deadline=absolute)
                result.served.append(served)
                result.breakdowns.append(
                    RequestBreakdown(
                        arrival=arrived,
                        completed=served.completed,
                        queue_wait=start - arrived,
                        device_queue=served.queue_cycles,
                        service=served.service_cycles,
                        retry=served.retry_cycles,
                    )
                )
                if metrics is not None:
                    metrics.histogram("server_queue_wait_cycles").observe(
                        start - arrived
                    )
                count("served" if served.ok else "failed")
                heappush(inflight, served.completed)

        def retire(until: float) -> None:
            """Free completed slots up to ``until``, pumping at each."""
            while inflight and inflight[0] <= until:
                pump(heappop(inflight))

        for request, arrived in zip(requests, arrivals, strict=True):
            retire(arrived)
            if len(waiting) >= self.queue_limit:
                result.dropped.append(
                    Rejection(request, arrived, arrived, "queue full")
                )
                if tracer is not None:
                    tracer.instant(
                        "drop", arrived, cat="runtime.server", tid="server"
                    )
                count("dropped")
                continue
            waiting.append((arrived, request))
            pump(arrived)

        while inflight or waiting:  # drain: no more arrivals
            if inflight:
                pump(heappop(inflight))
            else:  # every slot free: the rest of the queue pumps out
                pump(waiting[0][0])
        return result
