"""Fault-tolerant offload runtime: serving accelerators that misbehave.

The paper's workflows assume the accelerator answers every request on
time.  This package is the serving layer a production offload stack
needs when it does not: deterministic fault injection
(:mod:`.faults`), virtual-clock watchdog deadlines (:mod:`.watchdog`),
retry with capped exponential backoff (:mod:`.retry`), a circuit
breaker that trips on hard failures *or* on performance-interface drift
(:mod:`.breaker`, :mod:`.degrade`), graceful degradation to the CPU
software path, and record/replay integration so the §5 estimator can
price application runs that include faulted calls (:mod:`.tape`).

Entry point: :class:`~repro.runtime.device.ResilientDevice`, which
wraps any ``AcceleratorModel`` + ``PerformanceInterface`` pair as a
served endpoint on a virtual clock.  Above single devices,
:class:`~repro.runtime.pool.DevicePool` routes across a heterogeneous
fleet with breaker-aware failover (the ``interface_predicted`` policy
prices devices through their performance interfaces), and
:class:`~repro.runtime.serving.OpenLoopServer` drives the pool with
Poisson arrivals through a bounded admission queue with deadline
shedding.  ``docs/robustness.md`` documents the fault model, the
breaker state machine, and the pool/serving architecture.
"""

from .breaker import BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker
from .degrade import (
    DEFAULT_DRIFT_THRESHOLD,
    CpuFallback,
    DriftDetector,
    derive_drift_threshold,
    rpc_cpu_fallback,
)
from .device import CallRecord, ResilientDevice
from .faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScriptedFaultPlan,
    WindowedFaultPlan,
    dram_storm_latency,
    pipeline_stalls,
)
from .pool import (
    ROUTING_POLICIES,
    RPC_DEVICE_COSTS,
    RPC_DEVICE_KINDS,
    DevicePool,
    PooledDevice,
    PoolResult,
    RoutingPolicy,
    make_routing_policy,
    rpc_device,
    rpc_pool,
)
from .retry import RetryPolicy
from .serving import (
    DEFAULT_PRIORITY,
    REASON_ADMISSION_REJECTED,
    REASON_DEADLINE_EXCEEDED,
    REASON_PRIORITY_SHED,
    REASON_QUEUE_FULL,
    REJECTION_REASONS,
    OpenLoopServer,
    Rejection,
    RequestBreakdown,
    ServeResult,
)
from .tape import (
    JSON_CODEC,
    ResilientOffloadEstimate,
    ResilientOffloadEstimator,
    ResilientReplayDevice,
    TapeCodec,
    load_tape,
    protoacc_message_codec,
    replay_saved_tape,
    save_tape,
    tape_header,
    tape_stats,
)
from .watchdog import Watchdog, WatchdogTimeout

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "DEFAULT_PRIORITY",
    "JSON_CODEC",
    "REASON_ADMISSION_REJECTED",
    "REASON_DEADLINE_EXCEEDED",
    "REASON_PRIORITY_SHED",
    "REASON_QUEUE_FULL",
    "REJECTION_REASONS",
    "ROUTING_POLICIES",
    "RPC_DEVICE_COSTS",
    "RPC_DEVICE_KINDS",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CallRecord",
    "CircuitBreaker",
    "CpuFallback",
    "DevicePool",
    "DriftDetector",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "OpenLoopServer",
    "PoolResult",
    "PooledDevice",
    "Rejection",
    "RequestBreakdown",
    "ResilientDevice",
    "ResilientOffloadEstimate",
    "ResilientOffloadEstimator",
    "ResilientReplayDevice",
    "RetryPolicy",
    "RoutingPolicy",
    "ScriptedFaultPlan",
    "ServeResult",
    "TapeCodec",
    "Watchdog",
    "WatchdogTimeout",
    "WindowedFaultPlan",
    "derive_drift_threshold",
    "dram_storm_latency",
    "load_tape",
    "make_routing_policy",
    "pipeline_stalls",
    "protoacc_message_codec",
    "replay_saved_tape",
    "rpc_cpu_fallback",
    "rpc_device",
    "save_tape",
    "tape_header",
    "tape_stats",
]
