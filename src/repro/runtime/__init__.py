"""Fault-tolerant offload runtime: serving accelerators that misbehave.

The paper's workflows assume the accelerator answers every request on
time.  This package is the serving layer a production offload stack
needs when it does not: deterministic fault injection
(:mod:`.faults`), virtual-clock watchdog deadlines (:mod:`.watchdog`),
retry with capped exponential backoff (:mod:`.retry`), a circuit
breaker that trips on hard failures *or* on performance-interface drift
(:mod:`.breaker`, :mod:`.degrade`), graceful degradation to the CPU
software path, and record/replay integration so the §5 estimator can
price application runs that include faulted calls (:mod:`.tape`).

Entry point: :class:`~repro.runtime.device.ResilientDevice`, which
wraps any ``AcceleratorModel`` + ``PerformanceInterface`` pair as a
served endpoint on a virtual clock.  ``docs/robustness.md`` documents
the fault model and the breaker state machine.
"""

from .breaker import BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker
from .degrade import CpuFallback, DriftDetector, rpc_cpu_fallback
from .device import CallRecord, ResilientDevice
from .faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScriptedFaultPlan,
    dram_storm_latency,
    pipeline_stalls,
)
from .retry import RetryPolicy
from .tape import (
    ResilientOffloadEstimate,
    ResilientOffloadEstimator,
    ResilientReplayDevice,
)
from .watchdog import Watchdog, WatchdogTimeout

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CallRecord",
    "CircuitBreaker",
    "CpuFallback",
    "DriftDetector",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ResilientDevice",
    "ResilientOffloadEstimate",
    "ResilientOffloadEstimator",
    "ResilientReplayDevice",
    "RetryPolicy",
    "ScriptedFaultPlan",
    "Watchdog",
    "WatchdogTimeout",
    "dram_storm_latency",
    "pipeline_stalls",
    "rpc_cpu_fallback",
]
