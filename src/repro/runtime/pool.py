"""Heterogeneous device pool: breaker-aware failover routing.

One :class:`~repro.runtime.device.ResilientDevice` degrades to its own
host's CPU when the accelerator misbehaves.  A serving fleet can do
better: when Protoacc trips its breaker, the request is usually worth
*re-routing* — to an Optimus Prime card, or to a software server — not
worth absorbing locally.  :class:`DevicePool` is that layer: a front
door over heterogeneous resilient devices, each with its own fault
plan, circuit breaker, and retry policy, plus a pluggable router that
only ever considers devices whose breakers would admit the call.

Routing policies (:data:`ROUTING_POLICIES`):

* ``round_robin`` — rotate over admitting devices; the classic
  load-spreading baseline, blind to heterogeneity.
* ``least_outstanding`` — pick the admitting device with the fewest
  requests still in flight (join-the-shortest-queue).
* ``interface_predicted`` — the headline policy: price each admitting
  device as *backlog drain + interface-predicted service time +
  invocation overhead*, using the device's own performance interface
  (the Petri-net IR through the compiled engine, with a shared
  :class:`~repro.perf.EvalCache` across devices), and pick the minimum.
  This is the paper's thesis operationalized: performance interfaces
  make placement decisions mechanical.

When a device fails a dispatched request mid-flight (its breaker trips
while the call retries, or attempts exhaust), the pool *hedges*: the
failed call's burned cycles are charged to the request and it is
re-dispatched at the failure time to the best remaining device, never
returning to one it already failed on.

Everything runs on the repo's virtual clocks — deterministic,
replayable, and instant.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.hw.stats import Summary

from .device import CallRecord, ResilientDevice
from .faults import FaultKind

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")


@dataclass(frozen=True)
class PoolResult(Generic[RequestT]):
    """One request's journey through the pool."""

    request: RequestT
    arrival: float  # when the pool accepted the request
    completed: float  # when the final device answered (or gave up)
    device: str  # device that produced the outcome ("" if none admitted)
    path: str  # "accel", "cpu", or "failed"
    hedges: int  # re-dispatches after a mid-flight device failure
    devices_tried: tuple[str, ...]
    faults: tuple[FaultKind, ...]
    #: Where the cycles went.  Exact decomposition:
    #: ``queue_cycles + service_cycles + retry_cycles == cycles``.
    queue_cycles: float = 0.0  # waiting in device FIFOs before service
    service_cycles: float = 0.0  # the successful attempt / fallback work
    retry_cycles: float = 0.0  # failed attempts, backoff, watchdog waits

    @property
    def cycles(self) -> float:
        """End-to-end latency: queueing + service + hedging, in cycles."""
        return self.completed - self.arrival

    @property
    def ok(self) -> bool:
        return self.path != "failed"


class PooledDevice(Generic[RequestT, ResponseT]):
    """A :class:`ResilientDevice` plus the pool-side bookkeeping the
    router needs: a name, a pricing interface, and the in-flight ledger.

    Args:
        name: unique routing name within the pool.
        device: the served endpoint (keeps its own breaker/faults/tape).
        price_interface: interface used by ``interface_predicted``
            routing; defaults to the device's own serving interface.
        contract: optional :class:`~repro.lint.PerfContract` for the
            pricing interface.  The pool statically checks it at
            registration (see :class:`DevicePool`) and exposes it in
            :meth:`DevicePool.snapshot`.
    """

    def __init__(
        self,
        name: str,
        device: ResilientDevice[RequestT, ResponseT],
        *,
        price_interface=None,
        contract=None,
    ):
        self.name = name
        self.device = device
        self.price_interface = price_interface or device.interface
        self.contract = contract
        self.dispatched = 0
        self._completions: list[float] = []  # sorted completion times
        #: Brownout mode (set via :meth:`DevicePool.set_coarse_pricing`):
        #: price from the per-size-class cache instead of evaluating the
        #: interface per request.
        self.coarse_pricing = False
        self._coarse_prices: dict[str, float] = {}

    def available(self, now: float) -> bool:
        """Would this device's breaker admit a call at ``now``?"""
        return self.device.available(now)

    def busy_until(self, now: float) -> float:
        """When the device could *start* a request arriving at ``now``
        (its FIFO backlog drains at ``device.clock``)."""
        return max(self.device.clock, now)

    def outstanding(self, now: float) -> int:
        """Dispatched requests not yet completed at ``now``."""
        done = bisect_right(self._completions, now)
        if done:  # prune the settled prefix; queries move forward in time
            del self._completions[:done]
        return len(self._completions)

    def price(self, request: RequestT, now: float) -> float:
        """Predicted completion time of ``request`` on this device:
        backlog drain + interface-predicted service + offload overhead.

        Under brownout coarse pricing (:attr:`coarse_pricing`) the
        service+overhead term comes from a per-size-class cache — the
        first request of each class is priced exactly and every later
        one reuses that number, so a browned-out router spends zero
        engine cycles per decision."""
        if self.coarse_pricing:
            return self.busy_until(now) + self._coarse_service(request)
        overhead = (
            self.device.invocation_overhead(request)
            if self.device.invocation_overhead is not None
            else 0.0
        )
        return self.busy_until(now) + self.price_interface.latency(request) + overhead

    def _coarse_service(self, request: RequestT) -> float:
        """Cached service+overhead estimate keyed by RPC size class."""
        from repro.obs.drift import rpc_size_class

        label = rpc_size_class(request)
        cached = self._coarse_prices.get(label)
        if cached is None:
            overhead = (
                self.device.invocation_overhead(request)
                if self.device.invocation_overhead is not None
                else 0.0
            )
            cached = self.price_interface.latency(request) + overhead
            self._coarse_prices[label] = cached
        return cached

    def price_batch(self, requests: Sequence[RequestT], now: float) -> list[float]:
        """Predicted completion time for every request, priced as a batch.

        Same numbers as ``[self.price(r, now) for r in requests]`` — the
        interface's ``evaluate_batch`` is bit-identical to its per-item
        path — but the service predictions come from one engine pass
        (and, with a cache attached, one batched lookup), which is what
        makes scoring a large candidate matrix against the whole pool
        affordable.
        """
        start = self.busy_until(now)
        latencies = self.price_interface.evaluate_batch(requests)
        if self.device.invocation_overhead is not None:
            return [
                start + lat + self.device.invocation_overhead(request)
                for lat, request in zip(latencies, requests)
            ]
        return [start + lat for lat in latencies]

    def serve(self, request: RequestT, now: float) -> CallRecord[RequestT, ResponseT]:
        """Run the request through the device's full serving loop,
        starting no earlier than ``now`` (joins the device's FIFO)."""
        self.device.clock = self.busy_until(now)
        record = self.device.offload(request)
        insort(self._completions, self.device.clock)
        self.dispatched += 1
        return record


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class RoutingPolicy:
    """Picks one device among the breaker-admitting candidates.

    The pool guarantees ``candidates`` is non-empty and every member is
    ``available(now)``; a policy must return one of them (anything else
    counts as a routing-invariant violation and is overridden)."""

    name = "abstract"

    def pick(
        self,
        candidates: Sequence[PooledDevice],
        request,
        now: float,
    ) -> PooledDevice:
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Rotate over the admitting devices, blind to load and size."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def pick(self, candidates, request, now):
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


class LeastOutstandingPolicy(RoutingPolicy):
    """Join the shortest queue: fewest in-flight requests wins, ties
    broken by whoever frees up first."""

    name = "least_outstanding"

    def pick(self, candidates, request, now):
        return min(candidates, key=lambda d: (d.outstanding(now), d.busy_until(now)))


class InterfacePredictedPolicy(RoutingPolicy):
    """Minimize the *interface-predicted* completion time.

    The only policy that sees heterogeneity: a large pointer-heavy
    message prices high on Optimus Prime and low on Protoacc, so it
    lands where the hardware actually serves it fastest."""

    name = "interface_predicted"

    def pick(self, candidates, request, now):
        return min(candidates, key=lambda d: d.price(request, now))


ROUTING_POLICIES = {
    policy.name: policy
    for policy in (RoundRobinPolicy, LeastOutstandingPolicy, InterfacePredictedPolicy)
}


def make_routing_policy(spec: str | RoutingPolicy) -> RoutingPolicy:
    """Resolve a policy name (or pass an instance through).  Policies
    are stateful (round-robin keeps a cursor), so each pool gets a
    fresh instance."""
    if isinstance(spec, RoutingPolicy):
        return spec
    try:
        return ROUTING_POLICIES[spec]()
    except KeyError:
        known = ", ".join(sorted(ROUTING_POLICIES))
        raise ValueError(f"unknown routing policy {spec!r} (known: {known})") from None


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class DevicePool(Generic[RequestT, ResponseT]):
    """Breaker-aware failover front door over heterogeneous devices.

    Args:
        devices: the pooled endpoints; names must be unique.  Include a
            breaker-less CPU device to guarantee the pool always has an
            admitting member.
        policy: routing policy name or instance (see
            :data:`ROUTING_POLICIES`).
        cache: the shared :class:`~repro.perf.EvalCache` the devices'
            pricing interfaces use, if any — kept so :meth:`snapshot`
            can report hit rates alongside serving health.
        obs: an :class:`repro.obs.Obs` bundle; the pool emits dispatch
            spans, per-hop queue-wait spans, hedge instants, and
            request/hedge counters into it.
    """

    def __init__(
        self,
        devices: Sequence[PooledDevice[RequestT, ResponseT]],
        policy: str | RoutingPolicy = "round_robin",
        *,
        cache=None,
        obs=None,
    ):
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names in pool: {names}")
        if not devices:
            raise ValueError("a pool needs at least one device")
        for d in devices:
            self._check_contract(d)
        self.devices = list(devices)
        self.policy = make_routing_policy(policy)
        self.cache = cache
        self.obs = obs
        tracer = getattr(obs, "tracer", None)
        self._tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._metrics = getattr(obs, "metrics", None)
        #: Set by :meth:`repro.heal.HealingManager.attach`; when present
        #: the lifecycle view rides along in :meth:`snapshot`.
        self.healer = None
        #: Set by :class:`repro.scale.ScaleController`; when present the
        #: brownout-ladder and autoscaler views ride in :meth:`snapshot`.
        self.ladder = None
        self.scaler = None
        #: Brownout switch (rung 1 of the degradation ladder): when
        #: False, a mid-flight device failure is reported as-is instead
        #: of being re-dispatched to another device.
        self.hedging_enabled = True
        self.results: list[PoolResult[RequestT]] = []
        #: Routing-invariant breaches (policy picked outside the
        #: admitting set, or an "admitting" device rejected at its
        #: breaker).  A healthy pool keeps this at zero; CI asserts it.
        self.invariant_violations = 0

    def device(self, name: str) -> PooledDevice[RequestT, ResponseT]:
        for d in self.devices:
            if d.name == name:
                return d
        raise KeyError(name)

    @staticmethod
    def _check_contract(pooled: PooledDevice) -> None:
        contract = getattr(pooled, "contract", None)
        if contract is None:
            return
        problems = contract.validate()
        if problems:
            raise ValueError(
                f"device {pooled.name!r} registered with an invalid "
                f"performance contract: " + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    # Membership (the autoscaler's surface)
    # ------------------------------------------------------------------
    def add_device(self, pooled: PooledDevice[RequestT, ResponseT]) -> None:
        """Admit a new device to the routing set, mid-serve.

        The same gates as construction apply: unique name, valid
        performance contract.  The next dispatch can route to it."""
        if any(d.name == pooled.name for d in self.devices):
            raise ValueError(f"duplicate device name {pooled.name!r}")
        self._check_contract(pooled)
        pooled.coarse_pricing = any(d.coarse_pricing for d in self.devices)
        self.devices.append(pooled)
        if self._metrics is not None:
            self._metrics.gauge("pool_devices").set(len(self.devices))

    def remove_device(self, name: str) -> PooledDevice[RequestT, ResponseT]:
        """Retire a device from the routing set and return it.

        Routing-only: the device object (clock, breaker, tape) is
        untouched, so its records stay replayable and it can rejoin
        later via :meth:`add_device`."""
        if len(self.devices) == 1:
            raise ValueError("cannot remove the last device from a pool")
        pooled = self.device(name)
        self.devices.remove(pooled)
        if self._metrics is not None:
            self._metrics.gauge("pool_devices").set(len(self.devices))
        return pooled

    def set_coarse_pricing(self, enabled: bool) -> None:
        """Flip brownout coarse pricing on every pooled device (see
        :meth:`PooledDevice.price`).  Re-enabling exact pricing clears
        the caches so a later brownout re-prices from current
        interfaces (a hot-swap may have changed them)."""
        for d in self.devices:
            d.coarse_pricing = enabled
            if not enabled:
                d._coarse_prices.clear()

    def available_devices(
        self, now: float, *, exclude: Sequence[str] = ()
    ) -> list[PooledDevice[RequestT, ResponseT]]:
        """Devices whose breakers would admit a call at ``now``."""
        return [
            d for d in self.devices if d.name not in exclude and d.available(now)
        ]

    def dispatch(
        self,
        request: RequestT,
        now: float,
        *,
        deadline: float | None = None,
    ) -> PoolResult[RequestT]:
        """Serve one request, hedging across devices on mid-flight
        failure.  ``deadline`` (absolute cycles) stops hedging once the
        request is already late — the pool reports it failed rather
        than burn a healthy device on a dead request."""
        tracer = self._tracer
        tried: list[str] = []
        faults: list[FaultKind] = []
        hedges = 0
        t = now
        final_path = "failed"
        final_device = ""
        queue = 0.0
        service = 0.0
        retry = 0.0

        while True:
            candidates = self.available_devices(t, exclude=tried)
            if not candidates:
                break  # nobody will admit it: pool-level failure
            choice = self.policy.pick(candidates, request, t)
            if choice not in candidates:
                self.invariant_violations += 1
                choice = candidates[0]
            tried.append(choice.name)
            start = choice.busy_until(t)
            if start > t:
                queue += start - t
                if tracer is not None:
                    tracer.add_span(
                        "queue",
                        t,
                        start,
                        cat="runtime.queue",
                        tid=choice.name,
                        args={"backlog": choice.outstanding(t)},
                    )
            record = choice.serve(request, t)
            faults.extend(record.faults)
            service += record.service_cycles
            # Subtraction of two accumulated floats can land a hair
            # below zero; the component must stay non-negative.
            retry += max(0.0, record.cycles - record.service_cycles)
            t = choice.device.clock  # completion (or give-up) time
            if record.attempts == 0 and record.path == "failed":
                # The router saw an admitting device but its breaker
                # refused at serve time: the availability check and the
                # breaker disagree.  Never expected; counted for CI.
                self.invariant_violations += 1
            if record.path != "failed":
                final_path = record.path
                final_device = choice.name
                break
            final_device = choice.name
            if deadline is not None and t >= deadline:
                break  # already late: don't hedge a dead request
            if not self.hedging_enabled:
                break  # browned out: surface the failure, save the fleet
            hedges += 1
            if tracer is not None:
                tracer.instant(
                    "hedge",
                    t,
                    cat="runtime.pool",
                    tid="pool",
                    args={"failed_on": choice.name, "hedge": hedges},
                )

        result = PoolResult(
            request=request,
            arrival=now,
            completed=t,
            device=final_device,
            path=final_path,
            hedges=hedges,
            devices_tried=tuple(tried),
            faults=tuple(faults),
            queue_cycles=queue,
            service_cycles=service,
            retry_cycles=retry,
        )
        self.results.append(result)
        if tracer is not None:
            tracer.add_span(
                "dispatch",
                now,
                t,
                cat="runtime.pool",
                tid="pool",
                args={
                    "device": final_device,
                    "path": final_path,
                    "hedges": hedges,
                    "seq": len(self.results) - 1,
                },
            )
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(
                "pool_requests_total", policy=self.policy.name, path=final_path
            ).inc()
            if hedges:
                metrics.counter("pool_hedges_total", policy=self.policy.name).inc(
                    hedges
                )
            metrics.histogram(
                "pool_request_cycles", policy=self.policy.name
            ).observe(t - now)
        return result

    def price_matrix(
        self, requests: Sequence[RequestT], now: float
    ) -> dict[str, list[float]]:
        """Interface-predicted completion time of every request on every
        currently-admitting device — the scoring table capacity planners
        and hedging analyses read.  Each row is one batched interface
        pass (see :meth:`PooledDevice.price_batch`), so a 1000-request
        matrix over a heterogeneous pool costs a handful of engine
        passes instead of ``len(requests) * len(devices)`` simulations.
        """
        return {
            d.name: d.price_batch(requests, now)
            for d in self.available_devices(now)
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def device_loads(self) -> dict[str, int]:
        """Requests dispatched per device (hedged retries included)."""
        return {d.name: d.dispatched for d in self.devices}

    def latencies(self) -> list[float]:
        """End-to-end cycles of the *answered* requests."""
        return [r.cycles for r in self.results if r.ok]

    def failure_fraction(self) -> float:
        if not self.results:
            return 0.0
        return sum(not r.ok for r in self.results) / len(self.results)

    def hedge_count(self) -> int:
        return sum(r.hedges for r in self.results)

    def summary(self) -> Summary:
        return Summary.of(self.latencies())

    def snapshot(self) -> dict:
        """One structured health snapshot: serving outcomes, per-device
        breaker state and load, and the shared eval-cache hit rate —
        what ``perfscope report`` (and an operator dashboard) reads."""
        devices = {}
        for d in self.devices:
            breaker = d.device.breaker
            devices[d.name] = {
                "dispatched": d.dispatched,
                "clock": d.device.clock,
                "breaker": breaker.state.value if breaker is not None else None,
                "breaker_transitions": (
                    len(breaker.transitions) if breaker is not None else 0
                ),
                "fallback_fraction": d.device.fallback_fraction(),
                "faults": d.device.fault_count(),
            }
            if d.contract is not None:
                c = d.contract
                devices[d.name]["contract"] = {
                    "evaluability": c.evaluability,
                    "min_latency": c.min_latency,
                    "max_latency": (
                        c.max_latency if c.max_latency != float("inf") else "inf"
                    ),
                    "proven_monotone": sorted(
                        m.feature for m in c.monotone if m.proven
                    ),
                }
        snap = {
            "requests": len(self.results),
            "policy": self.policy.name,
            "failure_fraction": self.failure_fraction(),
            "hedges": self.hedge_count(),
            "invariant_violations": self.invariant_violations,
            "devices": devices,
        }
        if self.cache is not None:
            stats = self.cache.stats
            snap["eval_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "uncacheable": stats.uncacheable,
                "hit_rate": stats.hit_rate,
            }
        if self.healer is not None:
            snap["healing"] = self.healer.snapshot()
        if self.ladder is not None:
            snap["brownout"] = self.ladder.snapshot()
        if self.scaler is not None:
            snap["scaling"] = self.scaler.snapshot()
        observatory = getattr(self.obs, "observatory", None)
        if observatory is not None and hasattr(observatory, "top_mispredicted_stage"):
            attribution = {}
            for d in self.devices:
                top = observatory.top_mispredicted_stage(d.name)
                if top is not None:
                    attribution[d.name] = {"stage": top[0], "err_mean": top[1]}
            if attribution:
                snap["attribution"] = attribution
        tsdb = getattr(self.obs, "tsdb", None)
        if tsdb is not None:
            snap["tsdb"] = tsdb.snapshot()
        return snap


# ----------------------------------------------------------------------
# The standard RPC-serialization pool scenario
# ----------------------------------------------------------------------
_CONTRACT_CACHE: dict[str, object] = {}


def _accel_contracts() -> dict:
    """Verified performance contracts for the fleet's accelerators,
    derived once per process — :func:`repro.lint.analyze_bundle` runs
    the full symbolic-bound analysis, which is too slow to repeat per
    pool construction."""
    if not _CONTRACT_CACHE:
        from repro.accel.optimusprime.interfaces import (
            perf_contract as optimus_contract,
        )
        from repro.accel.protoacc.interfaces import (
            perf_contract as protoacc_contract,
        )

        _CONTRACT_CACHE["protoacc"] = protoacc_contract()
        _CONTRACT_CACHE["optimus-prime"] = optimus_contract()
    return _CONTRACT_CACHE


#: Device kinds :func:`rpc_device` can build, with the relative
#: fleet cost the capacity planner prices compositions by (arbitrary
#: "price units" per device: the accelerator cards cost more than a
#: software server, Protoacc more than Optimus Prime).
RPC_DEVICE_KINDS = ("protoacc", "optimus-prime", "cpu")
RPC_DEVICE_COSTS = {"protoacc": 3.0, "optimus-prime": 2.0, "cpu": 1.0}


def rpc_device(
    kind: str,
    *,
    name: str | None = None,
    seed: int = 17,
    cache=None,
    obs=None,
    fault_plan=None,
    with_breaker: bool = True,
) -> PooledDevice:
    """Build one pooled device of the standard RPC-serialization fleet.

    The single construction path shared by :func:`rpc_pool`, the
    autoscaler's scale-out templates, and the capacity planner's
    costing candidates — all three must price and serve identically or
    a planned fleet would not behave like the deployed one.

    ``kind`` is one of :data:`RPC_DEVICE_KINDS`.  Accelerator kinds are
    priced through their Petri-net interfaces on the compiled engine
    (sharing ``cache``) and carry their verified
    :class:`~repro.lint.PerfContract`; the CPU software server is its
    own ground truth and ships breaker-less (it always admits), so a
    pool containing one is never without a device.
    """
    from repro.accel.cpu import CpuSerializerModel, offload_overhead
    from repro.core.program import ProgramInterface
    from repro.perf import EvalCache

    from .breaker import BreakerConfig, CircuitBreaker
    from .degrade import rpc_cpu_fallback
    from .retry import RetryPolicy
    from .watchdog import Watchdog

    cache = cache if cache is not None else EvalCache()
    tracer = getattr(obs, "tracer", None)
    fallback = rpc_cpu_fallback()
    name = name or kind

    def breaker() -> CircuitBreaker | None:
        if not with_breaker:
            return None
        return CircuitBreaker(
            BreakerConfig(
                failure_threshold=4,
                recovery_cycles=200_000.0,
                probe_successes=2,
            )
        )

    if kind == "protoacc":
        from repro.accel.protoacc import ProtoaccSerializerModel
        from repro.accel.protoacc import petri_interface as protoacc_petri

        device = ResilientDevice(
            ProtoaccSerializerModel(tracer=tracer),
            protoacc_petri(engine="compiled", cache=cache, tracer=tracer),
            fallback,
            fault_plan=fault_plan,
            watchdog=Watchdog(budget=20_000.0),
            retry=RetryPolicy(max_attempts=2, seed=seed),
            breaker=breaker(),
            invocation_overhead=offload_overhead,
            name=name,
            obs=obs,
        )
        return PooledDevice(name, device, contract=_accel_contracts()["protoacc"])
    if kind == "optimus-prime":
        from repro.accel.optimusprime import OptimusPrimeModel
        from repro.accel.optimusprime import petri_interface as optimus_petri

        device = ResilientDevice(
            OptimusPrimeModel(),
            optimus_petri(engine="compiled", cache=cache, tracer=tracer),
            fallback,
            fault_plan=fault_plan,
            watchdog=Watchdog(budget=20_000.0),
            retry=RetryPolicy(max_attempts=2, seed=seed),
            breaker=breaker(),
            invocation_overhead=offload_overhead,
            name=name,
            obs=obs,
        )
        return PooledDevice(
            name, device, contract=_accel_contracts()["optimus-prime"]
        )
    if kind == "cpu":
        cpu_model = CpuSerializerModel()
        device = ResilientDevice(
            cpu_model,
            # Software is its own ground truth: a perfect interface.
            ProgramInterface("xeon-sw", latency_fn=cpu_model.measure_latency),
            fallback,
            fault_plan=fault_plan,
            # No faults, no breaker: the software server always admits
            # and always answers.
            name=name,
            obs=obs,
        )
        return PooledDevice(name, device)
    raise ValueError(
        f"unknown device kind {kind!r} (known: {', '.join(RPC_DEVICE_KINDS)})"
    )


def rpc_pool(
    policy: str | RoutingPolicy = "interface_predicted",
    *,
    faults: str = "none",
    seed: int = 17,
    cache=None,
    obs=None,
) -> DevicePool:
    """The benchmark/example fleet: Protoacc + Optimus Prime + a CPU
    software server, each wrapped as a :class:`ResilientDevice` with
    its own fault plan, breaker, and retry policy.

    ``faults``:

    * ``"none"`` — every device serves faultlessly (heterogeneity and
      queueing still apply).
    * ``"storm"`` — Protoacc takes a hang/drop/corrupt storm severe
      enough to trip its breaker; Optimus Prime sees background latency
      spikes; the CPU stays clean.  The pool must keep answering.
    * ``"dram"`` — Protoacc suffers frequent DRAM refresh storms: the
      device keeps *answering* (no hangs, no breaker trips — the storm
      cycles stay under the watchdog budget) but its memory stage
      silently inflates, which is exactly the misprediction shape the
      attribution layer exists to localize (``perfscope explain``
      names the memory stage; asserted in
      ``tests/integration/test_attribution_bottleneck.py``).

    All accelerator devices are priced through their Petri-net
    interfaces on the compiled engine, sharing one
    :class:`~repro.perf.EvalCache` (pass ``cache`` to share it wider,
    e.g. across the policies of a sweep).

    ``obs`` (an :class:`repro.obs.Obs` bundle) instruments the whole
    stack: the tracer is threaded into the Protoacc ground-truth model
    (DRAM spans), both Petri-net pricing interfaces (firing spans on
    cache misses), and every device's serving loop; the metrics
    registry and drift observatory ride along on each device and on
    the pool itself.
    """
    from repro.perf import EvalCache

    from .faults import FaultPlan, FaultSpec

    if faults not in ("none", "storm", "dram"):
        raise ValueError(
            f"faults must be 'none', 'storm', or 'dram', got {faults!r}"
        )
    cache = cache if cache is not None else EvalCache()
    metrics = getattr(obs, "metrics", None)
    if metrics is not None:
        cache.bind_metrics(metrics, cache="pool")

    storm_spec = FaultSpec(hang_rate=0.25, drop_rate=0.10, corrupt_rate=0.05)
    background_spec = FaultSpec(spike_rate=0.02, spike_scale=3.0)
    # Storm cycles sit far under the 20k-cycle watchdog budget, so the
    # device answers every call — slower, not broken.
    dram_spec = FaultSpec(storm_rate=0.45, storm_cycles=6_000.0)

    protoacc_plan = None
    optimus_plan = None
    if faults == "storm":
        protoacc_plan = FaultPlan(seed, storm_spec)
        optimus_plan = FaultPlan(seed + 1, background_spec)
    elif faults == "dram":
        protoacc_plan = FaultPlan(seed, dram_spec)

    protoacc = rpc_device(
        "protoacc",
        seed=seed,
        cache=cache,
        obs=obs,
        fault_plan=protoacc_plan,
    )
    optimus = rpc_device(
        "optimus-prime",
        seed=seed + 1,
        cache=cache,
        obs=obs,
        fault_plan=optimus_plan,
    )
    cpu = rpc_device("cpu", obs=obs)
    return DevicePool(
        [protoacc, optimus, cpu],
        policy=policy,
        cache=cache,
        obs=obs,
    )
