"""Virtual-clock watchdog for accelerator invocations.

A hung accelerator (or a dropped response) produces no completion event
at all; the only way a serving layer notices is a deadline.  The
watchdog here lives on the same virtual clock as the offload devices in
:mod:`repro.core.offload`: an invocation whose (simulated) latency
exceeds the budget costs the caller exactly ``budget`` cycles — the
watchdog fires at the deadline, not after it — and surfaces as a
:class:`WatchdogTimeout` the retry/breaker machinery can act on.

The Petri-net counterpart is :meth:`repro.petri.simulate.Simulator.run`'s
``max_time`` option, which stops an interface net that would simulate
past its deadline and reports partial progress.
"""

from __future__ import annotations

from dataclasses import dataclass


class WatchdogTimeout(RuntimeError):
    """An invocation exceeded its watchdog budget.

    Attributes:
        budget: cycles the watchdog allowed.
        observed: cycles the invocation would actually have taken
            (``inf`` for a hang).
    """

    def __init__(self, message: str, *, budget: float, observed: float):
        super().__init__(message)
        self.budget = budget
        self.observed = observed


@dataclass(frozen=True)
class Watchdog:
    """A per-invocation deadline, in virtual cycles."""

    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("watchdog budget must be positive")

    def admit(self, latency: float) -> float:
        """Return ``latency`` unchanged when it meets the deadline;
        otherwise raise :class:`WatchdogTimeout`.  On timeout the caller
        charges :attr:`budget` cycles — the time actually spent waiting.
        """
        if latency > self.budget:
            raise WatchdogTimeout(
                f"invocation needed {latency:.0f} cycles; watchdog budget "
                f"is {self.budget:.0f}",
                budget=self.budget,
                observed=latency,
            )
        return latency
