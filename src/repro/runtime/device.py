"""The fault-tolerant served device.

:class:`ResilientDevice` wraps any ``AcceleratorModel`` +
``PerformanceInterface`` pair as a served endpoint on a virtual clock —
the production counterpart of the paper's §5 offload devices.  Each call
runs the full serving loop:

1. admission through the :class:`~repro.runtime.breaker.CircuitBreaker`
   (OPEN ⇒ straight to the CPU fallback, no accelerator cycles burned);
2. an accelerator attempt whose *observed* latency comes from the
   ground-truth model, perturbed by the
   :class:`~repro.runtime.faults.FaultPlan` for this invocation;
3. a :class:`~repro.runtime.watchdog.Watchdog` deadline (hangs and
   drops cost exactly the budget — the time spent waiting);
4. retry with capped exponential backoff and seeded jitter on failure;
5. on success, online drift detection comparing the *interface's*
   predicted latency to the observed one — sustained mispredictions trip
   the breaker just like hard failures do;
6. on exhaustion (or an open breaker), graceful degradation to the
   CPU software path, which always answers.

Every call appends a :class:`CallRecord` to :attr:`ResilientDevice.records`;
that tape replays through :mod:`repro.runtime.tape` so the §5
record/replay estimator can price an application run that includes
faulted calls.

Everything is deterministic: same seeds, same workload ⇒ byte-identical
records and clock.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.accel.base import AcceleratorModel
from repro.core.interface import PerformanceInterface
from repro.core.offload import VirtualDevice
from repro.hw.stats import Summary

from .breaker import BreakerState, CircuitBreaker
from .degrade import CpuFallback, DriftDetector
from .faults import FaultEvent, FaultKind
from .retry import RetryPolicy
from .watchdog import Watchdog

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")


@dataclass(frozen=True)
class CallRecord(Generic[RequestT, ResponseT]):
    """One served call, as recorded on the tape."""

    index: int  # 1-based logical call number
    request: RequestT
    response: ResponseT
    cycles: float  # total virtual cycles the call cost, end to end
    path: str  # "accel", "cpu", or "failed" (pool mode, no degradation)
    attempts: int  # accelerator invocations made (0 = breaker short-circuit)
    faults: tuple[FaultKind, ...]  # faults encountered across attempts
    breaker_state: BreakerState | None  # state at admission, if a breaker ran
    #: Cycles of *useful* service: the successful accelerator attempt
    #: (or the CPU fallback computation).  ``cycles - service_cycles`` is
    #: pure overhead — failed attempts, backoff, watchdog waits.  0 when
    #: the call failed outright (pool mode).
    service_cycles: float = 0.0


@dataclass(frozen=True)
class _Attempt:
    """Outcome of one accelerator invocation."""

    ok: bool
    charge: float  # cycles this attempt cost
    observed: float | None  # device-side latency, when one was observed
    reason: str  # failure label for breaker/timeline bookkeeping
    #: Fault-injected memory-stall cycles inside ``observed`` (refresh
    #: storms, latency spikes): the slice of the observed window the
    #: attribution layer charges to the memory stage.
    stall: float = 0.0


class ResilientDevice(VirtualDevice[RequestT, ResponseT], Generic[RequestT, ResponseT]):
    """A served accelerator endpoint with faults, retries, a breaker,
    drift detection, and CPU graceful degradation.

    Args:
        model: ground-truth accelerator (observed latency).
        interface: the vendor's performance interface (predicted
            latency — used for drift detection and clean replay).
        fallback: the degraded-mode software path; also supplies the
            functional response for successful accelerator calls unless
            ``respond`` overrides it (accelerator and software agree
            functionally — the §5 record/replay premise).
        fault_plan: anything with ``.at(invocation) -> FaultEvent | None``;
            ``None`` serves faultlessly.
        watchdog: per-invocation deadline (default 100k cycles).
        retry: backoff policy (default 3 attempts).
        breaker: circuit breaker; ``None`` degrades per call only, with
            no admission control — every call pays its own timeouts.
        drift: online drift detector; requires a breaker to act on it.
        invocation_overhead: host-side cycles per accelerator invocation
            (descriptor setup + DMA), e.g.
            :func:`repro.accel.cpu.offload_overhead`.
        storm_latency: hook ``f(request, event) -> cycles`` resolving a
            REFRESH_STORM through a real memory model
            (:func:`repro.runtime.faults.dram_storm_latency`); the
            default approximation adds the storm duration.
    """

    def __init__(
        self,
        model: AcceleratorModel[RequestT],
        interface: PerformanceInterface[RequestT],
        fallback: CpuFallback[RequestT, ResponseT],
        *,
        respond: Callable[[RequestT], ResponseT] | None = None,
        fault_plan=None,
        watchdog: Watchdog | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        drift: DriftDetector | None = None,
        invocation_overhead: Callable[[RequestT], float] | None = None,
        storm_latency: Callable[[RequestT, FaultEvent], float] | None = None,
        name: str | None = None,
        obs=None,
    ):
        """``name`` labels this endpoint in traces/metrics (defaults to
        the model's name; a pool with several devices of one model type
        should pass distinct names).  ``obs`` is an
        :class:`repro.obs.Obs` bundle (or anything with
        ``tracer``/``metrics``/``observatory`` attributes, each
        optional): the tracer gets per-call offload/attempt/backoff
        spans on this device's serving clock, the metrics registry gets
        call/fault/breaker counters and a latency histogram, and the
        drift observatory receives every (predicted, observed) pair a
        successful accelerator attempt yields."""
        super().__init__()
        self.model = model
        self.interface = interface
        self.fallback = fallback
        self.respond = respond or fallback.software_fn
        self.fault_plan = fault_plan
        self.watchdog = watchdog or Watchdog(budget=100_000.0)
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.drift = drift
        self.invocation_overhead = invocation_overhead
        self.storm_latency = storm_latency
        self.name = name or getattr(model, "name", type(model).__name__)
        self.obs = obs
        tracer = getattr(obs, "tracer", None)
        self._tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._metrics = getattr(obs, "metrics", None)
        self._observatory = getattr(obs, "observatory", None)
        self._breaker_seen = len(breaker.transitions) if breaker is not None else 0
        self.records: list[CallRecord[RequestT, ResponseT]] = []
        self._invocations = 0  # monotone accelerator-invocation counter

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def call(self, request: RequestT) -> ResponseT:
        return self._serve(request, degrade=True).response

    def offload(self, request: RequestT) -> CallRecord[RequestT, ResponseT]:
        """Pool-facing serving: accelerator path only, no degradation.

        Where :meth:`call` absorbs accelerator failure by answering on
        the CPU fallback, a :class:`~repro.runtime.pool.DevicePool` wants
        the failure surfaced so it can *re-route* — another device may
        answer faster than this host's software path.  On exhaustion (or
        an inadmissible breaker) the returned record has
        ``path == "failed"`` and ``response is None``; the cycles charged
        are the time genuinely burned here (attempts, backoff, watchdog
        waits), which the pool accounts toward the request's end-to-end
        latency before hedging it elsewhere.
        """
        return self._serve(request, degrade=False)

    def _serve(
        self, request: RequestT, *, degrade: bool
    ) -> CallRecord[RequestT, ResponseT]:
        index = self.calls + 1
        start = self.clock
        tracer = self._tracer
        faults: list[FaultKind] = []
        attempts = 0
        response: ResponseT | None = None
        path = "failed"
        service = 0.0
        admission_state = self.breaker.state if self.breaker else None
        admitted = self.breaker is None or self.breaker.allow(self.clock)

        if admitted:
            for attempt in range(1, self.retry.max_attempts + 1):
                invocation = self._invocations
                self._invocations += 1
                attempts += 1
                event = self.fault_plan.at(invocation) if self.fault_plan else None
                if event is not None:
                    faults.append(event.kind)
                attempt_start = self.clock
                outcome = self._attempt(request, event)
                self.clock += outcome.charge
                if tracer is not None:
                    tracer.add_span(
                        "attempt",
                        attempt_start,
                        self.clock,
                        cat="runtime.attempt",
                        tid=self.name,
                        args={
                            "n": attempt,
                            "ok": outcome.ok,
                            "reason": outcome.reason,
                            "fault": event.kind.value if event is not None else None,
                            "observed": outcome.observed,
                        },
                    )
                    if outcome.ok and outcome.stall > 0.0:
                        # The fault-stretched tail of the observed
                        # window; attribution charges it to memory.
                        stall_end = self.clock - (outcome.charge - outcome.observed)
                        tracer.add_span(
                            "stall",
                            stall_end - outcome.stall,
                            stall_end,
                            cat="runtime.stall",
                            tid=self.name,
                            args={
                                "fault": (
                                    event.kind.value if event is not None else None
                                ),
                            },
                        )
                if outcome.ok:
                    response = self.respond(request)
                    path = "accel"
                    service = outcome.charge
                    self._record_success(request, outcome)
                    break
                if self.breaker is not None:
                    self.breaker.record_failure(self.clock, reason=outcome.reason)
                    if self.breaker.state is BreakerState.OPEN:
                        break  # the circuit just opened: stop burning retries
                if attempt < self.retry.max_attempts:
                    pause = self.retry.backoff(index, attempt)
                    if tracer is not None:
                        tracer.add_span(
                            "backoff",
                            self.clock,
                            self.clock + pause,
                            cat="runtime.backoff",
                            tid=self.name,
                            args={"after_attempt": attempt},
                        )
                    self.clock += pause

        if response is None and degrade:
            response, cycles = self.fallback.call(request)
            if tracer is not None:
                tracer.add_span(
                    "fallback",
                    self.clock,
                    self.clock + cycles,
                    cat="runtime.fallback",
                    tid=self.name,
                    args={"index": index},
                )
            self.clock += cycles
            path = "cpu"
            service = cycles

        self.calls += 1
        record = CallRecord(
            index=index,
            request=request,
            response=response,
            cycles=self.clock - start,
            path=path,
            attempts=attempts,
            faults=tuple(faults),
            breaker_state=admission_state,
            service_cycles=service,
        )
        self.records.append(record)
        if tracer is not None:
            tracer.add_span(
                "offload",
                start,
                self.clock,
                cat="runtime.offload",
                tid=self.name,
                args={"index": index, "path": path, "attempts": attempts},
            )
        self._observe_call(record, faults)
        return record

    def _observe_call(
        self, record: CallRecord[RequestT, ResponseT], faults: list[FaultKind]
    ) -> None:
        """Publish one finished call to metrics + breaker timeline."""
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(
                "device_calls_total", device=self.name, path=record.path
            ).inc()
            metrics.counter("device_attempts_total", device=self.name).inc(
                record.attempts
            )
            metrics.histogram("device_call_cycles", device=self.name).observe(
                record.cycles
            )
            for kind in faults:
                metrics.counter(
                    "device_faults_total", device=self.name, kind=kind.value
                ).inc()
        if self.breaker is not None and (
            self._tracer is not None or metrics is not None
        ):
            transitions = self.breaker.transitions
            for tr in transitions[self._breaker_seen :]:
                if self._tracer is not None:
                    self._tracer.instant(
                        f"breaker:{tr.state.value}",
                        tr.time,
                        cat="runtime.breaker",
                        tid=self.name,
                        args={"reason": tr.reason},
                    )
                if metrics is not None:
                    metrics.counter(
                        "breaker_transitions_total",
                        device=self.name,
                        to=tr.state.value,
                    ).inc()
            self._breaker_seen = len(transitions)

    def _attempt(self, request: RequestT, event: FaultEvent | None) -> _Attempt:
        """One accelerator invocation under ``event`` (or none)."""
        if getattr(self.model, "tracer", None) is not None and hasattr(
            self.model, "trace_origin"
        ):
            # Models time each call on a local 0-based clock; align their
            # spans (DRAM bursts etc.) with this device's serving clock.
            self.model.trace_origin = self.clock
        observed = self.model.measure_latency(request)
        base = observed  # fault-free device-side latency
        kind = event.kind if event is not None else None
        if kind is FaultKind.LATENCY_SPIKE:
            observed *= event.magnitude
        elif kind is FaultKind.REFRESH_STORM:
            if self.storm_latency is not None:
                observed = self.storm_latency(request, event)
            else:
                observed += event.magnitude
        elif kind is FaultKind.HANG:
            observed = float("inf")

        overhead = (
            self.invocation_overhead(request) if self.invocation_overhead else 0.0
        )
        budget = self.watchdog.budget
        if observed > budget:
            # Hang or pathological slowdown: the watchdog fires at the
            # deadline, so the caller paid exactly the budget.
            return _Attempt(False, budget + overhead, None, "watchdog timeout")
        if kind is FaultKind.DROP:
            # The device finished but the response never arrived; the
            # only detector is, again, the watchdog deadline.
            return _Attempt(False, budget + overhead, None, "response dropped")
        if kind is FaultKind.CORRUPT:
            # Arrived on time, failed the integrity check on arrival.
            return _Attempt(False, observed + overhead, None, "response corrupted")
        return _Attempt(
            True, observed + overhead, observed, "ok",
            stall=max(0.0, observed - base),
        )

    def _record_success(self, request: RequestT, outcome: _Attempt) -> None:
        if self.breaker is not None:
            was_half_open = self.breaker.state is BreakerState.HALF_OPEN
            self.breaker.record_success(self.clock)
            if (
                was_half_open
                and self.breaker.state is BreakerState.CLOSED
                and self.drift is not None
            ):
                self.drift.reset()  # a recovered device starts a fresh window
        observatory = self._observatory
        if outcome.observed is not None and (
            self.drift is not None or observatory is not None
        ):
            predicted = self.interface.latency(request)
            if observatory is not None:
                observatory.observe(
                    self.name, request, predicted, outcome.observed, at=self.clock
                )
            if self.drift is not None:
                drifted = self.drift.update(predicted, outcome.observed)
                if (
                    drifted
                    and self.breaker is not None
                    and self.breaker.state is BreakerState.CLOSED
                ):
                    self.breaker.trip(
                        self.clock,
                        f"interface drift: avg symmetric error "
                        f"{self.drift.last_score:.0%} over {self.drift.samples} calls",
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def available(self, now: float) -> bool:
        """Would the breaker admit a call at ``now``?  Non-mutating —
        safe for a router to poll across the whole pool."""
        return self.breaker is None or self.breaker.would_allow(now)

    @property
    def tape(self) -> list[CallRecord[RequestT, ResponseT]]:
        """The recorded calls, for replay via :mod:`repro.runtime.tape`."""
        return self.records

    def latencies(self) -> list[float]:
        """Per-call end-to-end virtual cycles."""
        return [r.cycles for r in self.records]

    def fallback_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.path == "cpu" for r in self.records) / len(self.records)

    def fault_count(self) -> int:
        return sum(len(r.faults) for r in self.records)

    def summary(self) -> Summary:
        return Summary.of(self.latencies())
