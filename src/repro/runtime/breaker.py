"""Circuit breaker over the accelerator path, on the virtual clock.

Standard three-state breaker, with one accelerator-specific twist: it
trips not only on consecutive *hard* failures (watchdog timeouts,
dropped or corrupted responses) but also on *soft* failure of the
performance interface itself — when online drift detection
(:class:`repro.runtime.degrade.DriftDetector`) reports that predictions
no longer track observed latency.  An interface that has drifted off its
calibrated envelope can no longer be trusted for admission or capacity
decisions, which is itself a reason to stop offloading.

States::

    CLOSED ──(threshold consecutive failures | drift)──▶ OPEN
    OPEN ──(recovery_cycles elapse)──▶ HALF_OPEN
    HALF_OPEN ──(probe_successes probe successes)──▶ CLOSED
    HALF_OPEN ──(any probe failure)──▶ OPEN

Half-open probing is *accounted*: at most ``max_probes`` calls are
admitted concurrently while HALF_OPEN (``allow`` answers False to the
rest), and only successes attributable to an admitted probe advance the
close streak.  Without that accounting, a pool of workers sharing one
breaker could flood a still-broken device with "probes", or close the
breaker on stale successes from calls admitted before the trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    #: Consecutive hard failures that trip the breaker.
    failure_threshold: int = 5
    #: Virtual cycles the breaker stays open before probing.
    recovery_cycles: float = 100_000.0
    #: Half-open successes required to close again.
    probe_successes: int = 2
    #: Concurrent half-open probes admitted; ``None`` = ``probe_successes``.
    max_probes: int | None = None

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_cycles <= 0:
            raise ValueError("recovery_cycles must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        if self.max_probes is not None and self.max_probes < 1:
            raise ValueError("max_probes must be >= 1 (or None)")

    @property
    def probe_limit(self) -> int:
        return self.max_probes if self.max_probes is not None else self.probe_successes


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, for post-mortem timelines."""

    time: float
    state: BreakerState
    reason: str


class CircuitBreaker:
    """Mutable breaker state machine.  All times are virtual cycles."""

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_streak = 0
        #: Admitted half-open probes whose outcome has not been recorded.
        self.probe_inflight = 0
        self.opened_at = 0.0
        self.transitions: list[BreakerTransition] = []

    def allow(self, now: float) -> bool:
        """May a call use the accelerator path at virtual time ``now``?

        While OPEN, the first query after the recovery window moves the
        breaker to HALF_OPEN and admits the call as a probe.  While
        HALF_OPEN, at most ``config.probe_limit`` probes may be in
        flight at once — further callers are rejected until a probe
        reports back.
        """
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.config.recovery_cycles:
                self._move(BreakerState.HALF_OPEN, now, "recovery window elapsed")
                self.probe_inflight = 1
                return True
            return False
        if self.state is BreakerState.HALF_OPEN:
            if self.probe_inflight < self.config.probe_limit:
                self.probe_inflight += 1
                return True
            return False
        return True

    def would_allow(self, now: float) -> bool:
        """Non-mutating availability check, for routing decisions.

        Unlike :meth:`allow`, this neither transitions OPEN→HALF_OPEN
        nor reserves a probe slot, so a router may poll every device's
        breaker without perturbing any of them.
        """
        if self.state is BreakerState.OPEN:
            return now - self.opened_at >= self.config.recovery_cycles
        if self.state is BreakerState.HALF_OPEN:
            return self.probe_inflight < self.config.probe_limit
        return True

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN and self.probe_inflight > 0:
            # A stale success from a call admitted before the trip says
            # nothing about the device *now*, so it must not advance the
            # close streak (the double-close bug) — hence the inflight check.
            self.probe_inflight -= 1
            self.probe_streak += 1
            if self.probe_streak >= self.config.probe_successes:
                self._move(
                    BreakerState.CLOSED,
                    now,
                    f"{self.probe_streak} healthy probes",
                )
        self.consecutive_failures = 0

    def record_failure(self, now: float, reason: str = "failure") -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.probe_inflight = max(0, self.probe_inflight - 1)
            self.trip(now, f"probe failed: {reason}")
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.trip(now, f"{self.consecutive_failures} consecutive failures")

    def trip(self, now: float, reason: str) -> None:
        """Force the breaker open (hard-failure streak or drift)."""
        if self.state is BreakerState.OPEN:
            return
        self._move(BreakerState.OPEN, now, reason)

    def _move(self, state: BreakerState, now: float, reason: str) -> None:
        self.state = state
        if state is BreakerState.OPEN:
            self.opened_at = now
        if state is not BreakerState.HALF_OPEN:
            self.probe_streak = 0
            self.probe_inflight = 0
        self.consecutive_failures = 0
        self.transitions.append(BreakerTransition(time=now, state=state, reason=reason))
