"""Circuit breaker over the accelerator path, on the virtual clock.

Standard three-state breaker, with one accelerator-specific twist: it
trips not only on consecutive *hard* failures (watchdog timeouts,
dropped or corrupted responses) but also on *soft* failure of the
performance interface itself — when online drift detection
(:class:`repro.runtime.degrade.DriftDetector`) reports that predictions
no longer track observed latency.  An interface that has drifted off its
calibrated envelope can no longer be trusted for admission or capacity
decisions, which is itself a reason to stop offloading.

States::

    CLOSED ──(threshold consecutive failures | drift)──▶ OPEN
    OPEN ──(recovery_cycles elapse)──▶ HALF_OPEN
    HALF_OPEN ──(probe_successes successes)──▶ CLOSED
    HALF_OPEN ──(any failure)──▶ OPEN
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    #: Consecutive hard failures that trip the breaker.
    failure_threshold: int = 5
    #: Virtual cycles the breaker stays open before probing.
    recovery_cycles: float = 100_000.0
    #: Half-open successes required to close again.
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_cycles <= 0:
            raise ValueError("recovery_cycles must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, for post-mortem timelines."""

    time: float
    state: BreakerState
    reason: str


class CircuitBreaker:
    """Mutable breaker state machine.  All times are virtual cycles."""

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_streak = 0
        self.opened_at = 0.0
        self.transitions: list[BreakerTransition] = []

    def allow(self, now: float) -> bool:
        """May a call use the accelerator path at virtual time ``now``?

        While OPEN, the first query after the recovery window moves the
        breaker to HALF_OPEN and admits the call as a probe.
        """
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.config.recovery_cycles:
                self._move(BreakerState.HALF_OPEN, now, "recovery window elapsed")
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.probe_streak += 1
            if self.probe_streak >= self.config.probe_successes:
                self._move(
                    BreakerState.CLOSED,
                    now,
                    f"{self.probe_streak} healthy probes",
                )
        self.consecutive_failures = 0

    def record_failure(self, now: float, reason: str = "failure") -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.trip(now, f"probe failed: {reason}")
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.trip(now, f"{self.consecutive_failures} consecutive failures")

    def trip(self, now: float, reason: str) -> None:
        """Force the breaker open (hard-failure streak or drift)."""
        if self.state is BreakerState.OPEN:
            return
        self._move(BreakerState.OPEN, now, reason)

    def _move(self, state: BreakerState, now: float, reason: str) -> None:
        self.state = state
        if state is BreakerState.OPEN:
            self.opened_at = now
        if state is not BreakerState.HALF_OPEN:
            self.probe_streak = 0
        self.consecutive_failures = 0
        self.transitions.append(BreakerTransition(time=now, state=state, reason=reason))
