"""Deterministic fault injection for served accelerator offload.

A production offload stack cannot assume the accelerator answers every
request on time: devices hang, DRAM controllers stall in refresh storms,
DMA responses get dropped or corrupted, and fitted performance models
drift off their calibrated envelope.  This module provides the *fault
schedule*: a seeded, random-access plan that decides, per accelerator
invocation, whether (and how) that invocation misbehaves.

Determinism is the design contract.  :meth:`FaultPlan.at` is a pure
function of ``(seed, invocation index)`` — two runs with the same seed
produce byte-identical schedules (see :meth:`FaultPlan.digest`), so a
benchmark with faults enabled is exactly as reproducible as one without.
Retries advance the invocation counter, so a retried call faces fresh,
but still deterministic, fault draws.

The physical fault mechanisms hook into the hardware substrate:

* refresh storms become :meth:`repro.hw.memory.Dram.add_stall_window`
  windows (see :func:`dram_storm_latency`);
* stuck pipeline stages become per-``(item, stage)`` stall cycles fed to
  :meth:`repro.hw.pipeline.LinePipeline.schedule` (see
  :func:`pipeline_stalls`).
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass
from enum import Enum
from math import log

import numpy as np

from repro.hw.memory import Dram


class FaultKind(str, Enum):
    """What goes wrong with one accelerator invocation."""

    #: Transient slowdown: observed latency is multiplied by ``magnitude``.
    LATENCY_SPIKE = "latency-spike"
    #: The DRAM controller stalls for ``magnitude`` cycles (refresh storm).
    REFRESH_STORM = "refresh-storm"
    #: The device never answers; only a watchdog recovers the caller.
    HANG = "hang"
    #: The device computes but the response is lost in transit.
    DROP = "drop"
    #: The response arrives on time but fails its integrity check.
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: which invocation, what kind, how bad."""

    invocation: int
    kind: FaultKind
    #: Spike: latency multiplier (> 1).  Storm: stall cycles.  Hang:
    #: ``inf``.  Drop/corrupt: 0 (binary faults).
    magnitude: float

    def encode(self) -> bytes:
        """Canonical byte form, used by :meth:`FaultPlan.digest`."""
        return f"{self.invocation}:{self.kind.value}:{self.magnitude!r}".encode()


@dataclass(frozen=True)
class FaultSpec:
    """Per-invocation fault probabilities and magnitudes.

    Rates are per accelerator invocation and mutually exclusive (one
    uniform draw is partitioned among the kinds), so they must sum to
    at most 1.
    """

    spike_rate: float = 0.0
    #: Mean latency multiplier of a spike (log-normal around this mean).
    spike_scale: float = 4.0
    storm_rate: float = 0.0
    #: Duration of one refresh-storm stall window, in cycles.
    storm_cycles: float = 5_000.0
    hang_rate: float = 0.0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (
            self.spike_rate,
            self.storm_rate,
            self.hang_rate,
            self.drop_rate,
            self.corrupt_rate,
        )
        if any(r < 0 or r > 1 for r in rates):
            raise ValueError("fault rates must lie in [0, 1]")
        if sum(rates) > 1.0:
            raise ValueError(f"fault rates sum to {sum(rates)} > 1")
        if self.spike_scale <= 1.0:
            raise ValueError("spike_scale must exceed 1 (it multiplies latency)")
        if self.storm_cycles <= 0:
            raise ValueError("storm_cycles must be positive")

    @property
    def total_rate(self) -> float:
        return (
            self.spike_rate
            + self.storm_rate
            + self.hang_rate
            + self.drop_rate
            + self.corrupt_rate
        )


class FaultPlan:
    """Seeded, random-access fault schedule.

    ``plan.at(i)`` derives its randomness from ``(seed, i)`` alone, so
    any invocation's fault is reproducible without replaying the ones
    before it, and two plans with equal seed and spec are byte-identical
    over any prefix.
    """

    def __init__(self, seed: int, spec: FaultSpec):
        if seed < 0:
            raise ValueError("seed must be >= 0")
        self.seed = int(seed)
        self.spec = spec

    def at(self, invocation: int) -> FaultEvent | None:
        """The fault striking accelerator invocation ``invocation``, if any."""
        if invocation < 0:
            raise ValueError("invocation index must be >= 0")
        spec = self.spec
        if spec.total_rate == 0.0:
            return None
        rng = np.random.default_rng((self.seed, invocation))
        u = rng.random()
        edge = spec.spike_rate
        if u < edge:
            mult = 1.0 + rng.lognormal(mean=log(spec.spike_scale - 1.0), sigma=0.5)
            return FaultEvent(invocation, FaultKind.LATENCY_SPIKE, float(mult))
        edge += spec.storm_rate
        if u < edge:
            return FaultEvent(invocation, FaultKind.REFRESH_STORM, spec.storm_cycles)
        edge += spec.hang_rate
        if u < edge:
            return FaultEvent(invocation, FaultKind.HANG, float("inf"))
        edge += spec.drop_rate
        if u < edge:
            return FaultEvent(invocation, FaultKind.DROP, 0.0)
        edge += spec.corrupt_rate
        if u < edge:
            return FaultEvent(invocation, FaultKind.CORRUPT, 0.0)
        return None

    def schedule(self, n: int) -> tuple[FaultEvent | None, ...]:
        """The first ``n`` invocations' faults (``None`` = healthy)."""
        return tuple(self.at(i) for i in range(n))

    def digest(self, n: int) -> str:
        """SHA-256 over the canonical encoding of the first ``n`` slots.

        Two plans are byte-identical over a prefix iff their digests
        match — the determinism assertion the benchmarks rely on.
        """
        h = hashlib.sha256()
        for event in self.schedule(n):
            h.update(event.encode() if event is not None else b"-")
            h.update(b"|")
        return h.hexdigest()


class ScriptedFaultPlan:
    """An explicit invocation→fault map, for tests and reproductions of
    observed incidents.  API-compatible with :class:`FaultPlan`."""

    def __init__(self, events: Mapping[int, FaultEvent]):
        self.events = dict(events)

    def at(self, invocation: int) -> FaultEvent | None:
        return self.events.get(invocation)

    def schedule(self, n: int) -> tuple[FaultEvent | None, ...]:
        return tuple(self.at(i) for i in range(n))

    def digest(self, n: int) -> str:
        h = hashlib.sha256()
        for event in self.schedule(n):
            h.update(event.encode() if event is not None else b"-")
            h.update(b"|")
        return h.hexdigest()


class WindowedFaultPlan:
    """Gate an underlying fault plan to an invocation window.

    Invocations in ``[start, stop)`` draw faults from ``plan`` (indexed
    from the window's own origin, so the storm's schedule is independent
    of when it opens); invocations outside the window are healthy.  This
    is how a *rolling* fault storm is expressed: the device serves
    cleanly, degrades for a bounded stretch, then recovers — the shape
    autoscaler hysteresis and brownout descent are tested against.
    API-compatible with :class:`FaultPlan`.
    """

    def __init__(self, plan, start: int, stop: int):
        if start < 0 or stop < start:
            raise ValueError("need 0 <= start <= stop")
        self.plan = plan
        self.start = int(start)
        self.stop = int(stop)

    def at(self, invocation: int) -> FaultEvent | None:
        if invocation < 0:
            raise ValueError("invocation index must be >= 0")
        if not (self.start <= invocation < self.stop):
            return None
        inner = self.plan.at(invocation - self.start)
        if inner is None:
            return None
        return FaultEvent(invocation, inner.kind, inner.magnitude)

    def schedule(self, n: int) -> tuple[FaultEvent | None, ...]:
        return tuple(self.at(i) for i in range(n))

    def digest(self, n: int) -> str:
        h = hashlib.sha256()
        for event in self.schedule(n):
            h.update(event.encode() if event is not None else b"-")
            h.update(b"|")
        return h.hexdigest()


def pipeline_stalls(
    plan, n_items: int, stage: int = 0, hang_cycles: float = 100_000.0
) -> Mapping[tuple[int, int], float]:
    """Project a fault plan onto a pipeline run: item ``i`` maps to
    invocation ``i``.  Hangs become ``hang_cycles`` of extra service
    time in ``stage`` (a stuck-then-reset stage, not a permanent wedge —
    the recurrence cannot express "never finishes") and refresh storms
    stall the stage for their duration.  Spikes are multiplicative on a
    base cost the stall hook cannot see, so they are not projected here.

    The result feeds :meth:`repro.hw.pipeline.LinePipeline.schedule`'s
    ``stalls`` parameter.
    """
    stalls: dict[tuple[int, int], float] = {}
    for i in range(n_items):
        event = plan.at(i)
        if event is None:
            continue
        if event.kind is FaultKind.HANG:
            stalls[(i, stage)] = hang_cycles
        elif event.kind is FaultKind.REFRESH_STORM:
            stalls[(i, stage)] = event.magnitude
    return stalls


def dram_storm_latency(model):
    """Build a storm-latency hook for a DRAM-backed accelerator model.

    Returns ``f(item, event) -> cycles``: the model's latency for
    ``item`` when a refresh storm of ``event.magnitude`` cycles opens at
    the start of the invocation, resolved through the *real* DRAM timing
    model (:meth:`repro.hw.memory.Dram.add_stall_window`) rather than an
    additive approximation.  The model must expose ``serialize_timing``
    accepting a ``dram=`` keyword (the Protoacc models do).
    """
    if not hasattr(model, "serialize_timing"):
        raise TypeError(
            f"{type(model).__name__} has no serialize_timing(dram=...) hook; "
            "use the additive storm approximation instead"
        )

    def storm_latency(item, event: FaultEvent) -> float:
        dram = Dram(model.dram_config)
        dram.add_stall_window(0.0, event.magnitude)
        return model.serialize_timing(item, dram=dram).latency

    return storm_latency
