"""Retry with capped exponential backoff and seeded jitter.

Backoff delays are charged to the virtual clock between accelerator
attempts.  Jitter is derived from ``(seed, call index, attempt)``, so a
retry schedule — like everything else in the runtime — is a pure
function of its seeds: two runs of the same workload back off by
byte-identical amounts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt ``k`` (1-based) waits
    ``min(cap, base_delay * multiplier**(k-1))`` cycles, scaled by a
    seeded jitter factor uniform in ``[1 - jitter, 1 + jitter]``."""

    max_attempts: int = 3
    base_delay: float = 200.0
    multiplier: float = 2.0
    cap: float = 10_000.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.cap < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def backoff(self, call: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of logical call
        ``call`` — deterministic in ``(seed, call, attempt)``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.cap, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = np.random.default_rng((self.seed, call, attempt))
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def delays(self, call: int) -> tuple[float, ...]:
        """All backoff delays call ``call`` would pay if every attempt
        failed (one fewer than ``max_attempts``: no wait after the last)."""
        return tuple(self.backoff(call, a) for a in range(1, self.max_attempts))
