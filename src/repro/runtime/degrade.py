"""Graceful degradation: drift detection and the CPU fallback path.

Two pieces:

* :class:`DriftDetector` — an online sliding window over
  (interface-predicted, model-observed) latency pairs, scored with the
  same relative-error machinery the offline validation harness uses
  (:func:`repro.core.validation.online_drift`).  When the windowed
  average relative error crosses the threshold, the interface has
  drifted off its calibrated envelope and the breaker should stop
  trusting the accelerator path.

* :class:`CpuFallback` — the degraded-mode service: a functional
  software implementation plus its latency model (typically the
  :mod:`repro.accel.cpu` Xeon baseline).  Slower, but it always answers,
  which is what bounds the tail when the accelerator does not.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.core.validation import online_drift
from repro.hw.stats import ErrorReport

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")


#: Hand-chosen threshold used when no offline calibration is available.
DEFAULT_DRIFT_THRESHOLD = 0.5


def derive_drift_threshold(
    report: ErrorReport | None,
    *,
    headroom: float = 3.0,
    floor: float = 0.15,
    fallback: float = DEFAULT_DRIFT_THRESHOLD,
) -> float:
    """Drift threshold fitted to an interface's *offline* error profile.

    The validation harness (:func:`repro.core.validation.validate_interface`)
    reports the interface's relative error on healthy traffic; drift
    detection must not trip inside that envelope.  The threshold is
    ``headroom ×`` the offline p95 error (p95, not max: one calibration
    outlier should not deafen the detector), clamped below by ``floor``
    so a near-perfect interface does not trip on modeling noise.  With
    no report (or a pre-quantile report), the hand-chosen ``fallback``
    (0.5) applies unchanged.
    """
    if headroom <= 1.0:
        raise ValueError("headroom must exceed 1 (threshold sits above healthy error)")
    if report is None:
        return fallback
    quantile = report.p95 if report.p95 is not None else None
    if quantile is None:
        return fallback
    return max(floor, headroom * quantile)


class DriftDetector:
    """Sliding-window relative-error monitor for a performance interface.

    The drift signal is the windowed average of the *symmetric* relative
    error ``|p - o| / min(p, o)`` — unlike the offline harness's
    ``|p - o| / o``, it does not saturate at 1 when the device runs far
    slower than predicted, which is exactly the regime drift detection
    exists for.  The plain :class:`~repro.hw.stats.ErrorReport` from the
    validation machinery is still computed for diagnostics
    (:attr:`last_report`).

    Args:
        window: number of recent (predicted, observed) pairs scored.
        threshold: windowed average symmetric relative error that counts
            as drift.  Set it above the interface's validated offline
            error (an interface that is 10% off in calibration should
            not trip a 10% threshold on the first sample).
        min_samples: pairs required before drift can be reported at all.
    """

    def __init__(
        self,
        *,
        window: int = 32,
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
        min_samples: int = 8,
    ):
        if window < 1 or min_samples < 1 or min_samples > window:
            raise ValueError("need 1 <= min_samples <= window")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.min_samples = min_samples
        self._predicted: deque[float] = deque(maxlen=window)
        self._observed: deque[float] = deque(maxlen=window)
        self.last_report: ErrorReport | None = None
        self.last_score: float | None = None

    @classmethod
    def from_error_report(
        cls,
        report: ErrorReport | None,
        *,
        window: int = 32,
        min_samples: int = 8,
        headroom: float = 3.0,
        floor: float = 0.15,
    ) -> DriftDetector:
        """A detector whose threshold is refit from the offline
        :class:`~repro.hw.stats.ErrorReport` the validation harness
        produced for this interface (see :func:`derive_drift_threshold`).
        Passing ``None`` keeps the hand-chosen default threshold."""
        return cls(
            window=window,
            min_samples=min_samples,
            threshold=derive_drift_threshold(report, headroom=headroom, floor=floor),
        )

    @property
    def samples(self) -> int:
        return len(self._predicted)

    @staticmethod
    def symmetric_error(predicted: float, observed: float) -> float:
        floor = min(abs(predicted), abs(observed))
        if floor == 0:
            return 0.0 if predicted == observed else float("inf")
        return abs(predicted - observed) / floor

    def update(self, predicted: float, observed: float) -> bool:
        """Record one pair; return True when the window is in drift."""
        self._predicted.append(predicted)
        self._observed.append(observed)
        if self.samples < self.min_samples:
            return False
        self.last_report = online_drift(list(self._predicted), list(self._observed))
        self.last_score = sum(
            self.symmetric_error(p, o)
            for p, o in zip(self._predicted, self._observed, strict=True)
        ) / self.samples
        return self.last_score > self.threshold

    def reset(self) -> None:
        """Forget the window (e.g. after the breaker closes again)."""
        self._predicted.clear()
        self._observed.clear()
        self.last_report = None
        self.last_score = None


@dataclass(frozen=True)
class CpuFallback(Generic[RequestT, ResponseT]):
    """The degraded-mode path: software answer plus software cycles."""

    software_fn: Callable[[RequestT], ResponseT]
    latency_fn: Callable[[RequestT], float]

    def call(self, request: RequestT) -> tuple[ResponseT, float]:
        return self.software_fn(request), self.latency_fn(request)


def rpc_cpu_fallback() -> CpuFallback:
    """The standard fallback for the RPC serialization scenario: encode
    on the Xeon software path at its modeled cost."""
    from repro.accel.cpu import CpuSerializerModel

    cpu = CpuSerializerModel()
    return CpuFallback(
        software_fn=lambda msg: msg.encode(),
        latency_fn=cpu.measure_latency,
    )
