"""Replay a faulted serving tape through the §5 record/replay machinery.

The paper's :class:`~repro.core.offload.OffloadEstimator` answers "what
end-to-end time would my application see if I offloaded?" under ideal
serving.  This module asks the production follow-up: *what does it see
when the accelerator misbehaves?*  A :class:`~repro.runtime.device.ResilientDevice`
run leaves a tape of :class:`~repro.runtime.device.CallRecord`s whose
``cycles`` already include fault penalties, watchdog waits, backoff, and
CPU-fallback time; replaying that tape charges those recorded costs
instead of the clean interface prediction, and the gap between the two
replays is the availability overhead of the fault environment.

Tapes also *persist*: :func:`save_tape` / :func:`load_tape` serialize a
record list to gzipped JSONL so a faulted incident recorded in one
process replays in another (``python -m repro.runtime.tape replay
incident.jsonl.gz`` prices a saved tape from the command line).
Requests/responses travel through a :class:`TapeCodec`; the stock codecs
cover JSON-native payloads and Protoacc :class:`~repro.accel.protoacc.message.Message`
traffic.
"""

from __future__ import annotations

import gzip
import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Generic, TypeVar

from repro.core.interface import PerformanceInterface
from repro.core.offload import Application, ReplayDevice

from .breaker import BreakerState
from .device import CallRecord, ResilientDevice
from .faults import FaultKind

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")


class ResilientReplayDevice(ReplayDevice[RequestT, ResponseT]):
    """Phase-2 replay of a faulted tape: responses come from the
    records, and every call charges its *recorded* cycles — faults,
    retries, backoff, and fallback included — instead of the clean
    interface prediction.  Divergence detection is inherited from
    :class:`~repro.core.offload.ReplayDevice`.
    """

    def __init__(
        self,
        records: Sequence[CallRecord[RequestT, ResponseT]],
        interface: PerformanceInterface[RequestT],
    ):
        super().__init__([(r.request, r.response) for r in records], interface)
        self.records = list(records)

    def _charge(self, index: int, request: RequestT) -> float:
        return self.records[index - 1].cycles


@dataclass(frozen=True)
class ResilientOffloadEstimate:
    """Outcome of the three-phase faulted estimation."""

    clean_cycles: float  # replay under fault-free interface predictions
    faulted_cycles: float  # replay under the recorded faulted serving
    calls: int
    fallback_calls: int  # calls that degraded to the CPU path
    faults: int  # fault events encountered while recording

    @property
    def availability_overhead(self) -> float:
        """How much slower the faulted run is, end to end (>= ~1)."""
        if self.clean_cycles == 0:
            return float("inf")
        return self.faulted_cycles / self.clean_cycles


class ResilientOffloadEstimator(Generic[RequestT, ResponseT]):
    """Record once on a fault-injected served device, then replay twice.

    Phase 1 drives the application against a fresh
    :class:`ResilientDevice` (built by ``device_factory`` so repeated
    estimates start from cold breaker/drift state).  Phase 2 replays the
    tape charging recorded faulted cycles; phase 3 replays it charging
    the clean interface prediction plus ``invocation_overhead``.  Because
    accelerator invocations are pure, all three runs follow the same
    path — the §5 record/replay premise — even though some recorded
    calls were served by the CPU fallback.
    """

    def __init__(
        self,
        device_factory: Callable[[], ResilientDevice[RequestT, ResponseT]],
        interface: PerformanceInterface[RequestT],
        invocation_overhead: Callable[[RequestT], float] | None = None,
    ):
        self.device_factory = device_factory
        self.interface = interface
        self.invocation_overhead = invocation_overhead

    def estimate(self, application: Application) -> ResilientOffloadEstimate:
        device = self.device_factory()
        application(device)
        records = device.records

        faulted = ResilientReplayDevice(records, self.interface)
        application(faulted)

        clean: ReplayDevice[RequestT, ResponseT] = ReplayDevice(
            [(r.request, r.response) for r in records],
            self.interface,
            self.invocation_overhead,
        )
        application(clean)

        return ResilientOffloadEstimate(
            clean_cycles=clean.clock,
            faulted_cycles=faulted.clock,
            calls=len(records),
            fallback_calls=sum(r.path == "cpu" for r in records),
            faults=sum(len(r.faults) for r in records),
        )


# ----------------------------------------------------------------------
# Persistence: gzipped JSONL tapes that replay across processes
# ----------------------------------------------------------------------
#: On-disk format version; bump when the line schema changes.
TAPE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TapeCodec:
    """How request/response payloads cross the JSON boundary.

    ``encode_*`` must produce JSON-serializable values whose ``decode_*``
    inverse rebuilds an *equal* object — replay depends on request
    equality (:class:`~repro.core.offload.ReplayDevice` matches requests
    by value to detect divergence).  ``None`` responses (records with
    ``path == "failed"``) bypass the codec.
    """

    name: str
    encode_request: Callable[[Any], Any]
    decode_request: Callable[[Any], Any]
    encode_response: Callable[[Any], Any]
    decode_response: Callable[[Any], Any]


def _identity(value: Any) -> Any:
    return value


#: Payloads that are already JSON-native (ints, strings, lists, dicts).
JSON_CODEC = TapeCodec("json", _identity, _identity, _identity, _identity)


def protoacc_message_codec() -> TapeCodec:
    """Codec for the RPC serving scenario: requests are Protoacc
    :class:`~repro.accel.protoacc.message.Message` instances, responses
    their encoded wire bytes."""
    import base64

    from repro.accel.protoacc.message import (
        message_from_jsonable,
        message_to_jsonable,
    )

    return TapeCodec(
        name="protoacc-message",
        encode_request=message_to_jsonable,
        decode_request=message_from_jsonable,
        encode_response=lambda b: base64.b64encode(b).decode("ascii"),
        decode_response=base64.b64decode,
    )


def _codec_by_name(name: str) -> TapeCodec:
    if name == JSON_CODEC.name:
        return JSON_CODEC
    if name == "protoacc-message":
        return protoacc_message_codec()
    raise ValueError(f"unknown tape codec {name!r}")


def save_tape(
    records: Sequence[CallRecord],
    path: str | Path,
    *,
    codec: TapeCodec = JSON_CODEC,
    device: str | None = None,
) -> Path:
    """Serialize a serving tape to gzipped JSONL at ``path``.

    Line 1 is a header (format version, codec name, record count); each
    further line is one :class:`~repro.runtime.device.CallRecord`.  The
    file is self-describing enough for :func:`load_tape` to refuse a
    codec mismatch instead of resurrecting garbage.

    ``device`` optionally names the device that served the tape — pure
    header metadata (records are unchanged, so the format version
    stays), surfaced by :func:`tape_header` and the ``stats``
    subcommand.
    """
    path = Path(path)
    header = {
        "format": "repro-serving-tape",
        "version": TAPE_FORMAT_VERSION,
        "codec": codec.name,
        "records": len(records),
    }
    if device is not None:
        header["device"] = device
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for r in records:
            line = {
                "index": r.index,
                "request": codec.encode_request(r.request),
                "response": (
                    None if r.response is None else codec.encode_response(r.response)
                ),
                "cycles": r.cycles,
                "service_cycles": r.service_cycles,
                "path": r.path,
                "attempts": r.attempts,
                "faults": [k.value for k in r.faults],
                "breaker_state": (
                    None if r.breaker_state is None else r.breaker_state.value
                ),
            }
            fh.write(json.dumps(line) + "\n")
    return path


def load_tape(
    path: str | Path,
    *,
    codec: TapeCodec | None = None,
) -> list[CallRecord]:
    """Load a tape written by :func:`save_tape`.

    ``codec=None`` resolves the codec named in the header (stock codecs
    only); passing one explicitly must match the header's name.
    """
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != "repro-serving-tape":
            raise ValueError(f"{path} is not a serving tape")
        if header.get("version") != TAPE_FORMAT_VERSION:
            raise ValueError(
                f"tape version {header.get('version')} != {TAPE_FORMAT_VERSION}"
            )
        if codec is None:
            codec = _codec_by_name(header["codec"])
        elif codec.name != header["codec"]:
            raise ValueError(
                f"tape was written with codec {header['codec']!r}, "
                f"not {codec.name!r}"
            )
        records = [
            CallRecord(
                index=line["index"],
                request=codec.decode_request(line["request"]),
                response=(
                    None
                    if line["response"] is None
                    else codec.decode_response(line["response"])
                ),
                cycles=float(line["cycles"]),
                # Tapes written before the observability release carry
                # no service split; treat their cycles as opaque.
                service_cycles=float(line.get("service_cycles", 0.0)),
                path=line["path"],
                attempts=line["attempts"],
                faults=tuple(FaultKind(k) for k in line["faults"]),
                breaker_state=(
                    None
                    if line["breaker_state"] is None
                    else BreakerState(line["breaker_state"])
                ),
            )
            for line in map(json.loads, fh)
        ]
    if len(records) != header["records"]:
        raise ValueError(
            f"tape truncated: header promises {header['records']} records, "
            f"found {len(records)}"
        )
    return records


def tape_header(path: str | Path) -> dict:
    """The self-describing first line of a saved tape (format, version,
    codec, record count, and the optional ``device`` name)."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
    if header.get("format") != "repro-serving-tape":
        raise ValueError(f"{path} is not a serving tape")
    return header


def tape_stats(
    records: Sequence[CallRecord],
    *,
    classes=None,
    tail: int | None = None,
) -> dict:
    """Summarize a serving tape per rpc-size-class.

    Classes come from the same :class:`~repro.obs.SizeClasses` spec the
    drift observatory and the healing loop key on (``None``: the stock
    buckets), so an operator eyeballing a tape sees the exact keys a
    refit would train on.  ``tail`` keeps only the last ``tail`` records
    first — the window-tail view that matches the healing loop's
    sliding refit window.

    Returns ``{"records": n, "tail": tail-or-None, "classes": {label:
    {"count", "paths", "faults", "service_cycles", "cycles"}}}`` where
    the two cycle entries are mean/p50/p95/max dicts over that class.
    """
    from repro.hw.stats import Summary
    from repro.obs.drift import DEFAULT_SIZE_CLASSES

    classes = classes if classes is not None else DEFAULT_SIZE_CLASSES
    window = list(records)
    if tail is not None:
        if tail < 1:
            raise ValueError("tail must be >= 1")
        window = window[-tail:]

    def cycle_summary(values: list[float]) -> dict:
        s = Summary.of(values)
        return {"mean": s.mean, "p50": s.p50, "p95": s.p95, "max": s.maximum}

    grouped: dict[str, list[CallRecord]] = {}
    for r in window:
        grouped.setdefault(classes.classify(r.request), []).append(r)

    out_classes = {}
    for label in sorted(grouped):
        rs = grouped[label]
        paths: dict[str, int] = {}
        for r in rs:
            paths[r.path] = paths.get(r.path, 0) + 1
        out_classes[label] = {
            "count": len(rs),
            "paths": paths,
            "faults": sum(len(r.faults) for r in rs),
            "service_cycles": cycle_summary([r.service_cycles for r in rs]),
            "cycles": cycle_summary([r.cycles for r in rs]),
        }
    return {"records": len(window), "tail": tail, "classes": out_classes}


def replay_saved_tape(path: str | Path) -> dict:
    """Price a persisted incident tape: load it, replay it, and return
    the faulted/clean cycle totals (the cross-process acceptance check —
    a tape saved in one process must replay to identical numbers here).

    Clean-replay cycles are only computed for the ``protoacc-message``
    codec, whose traffic the stock Protoacc program interface can price;
    other codecs report faulted cycles alone.
    """
    records = load_tape(path)
    with gzip.open(Path(path), "rt", encoding="utf-8") as fh:
        codec_name = json.loads(fh.readline())["codec"]

    out: dict[str, Any] = {
        "calls": len(records),
        "faults": sum(len(r.faults) for r in records),
        "fallback_calls": sum(r.path == "cpu" for r in records),
        "failed_calls": sum(r.path == "failed" for r in records),
    }

    if codec_name == "protoacc-message":
        from repro.accel.cpu import offload_overhead
        from repro.accel.protoacc import PROGRAM

        interface: PerformanceInterface = PROGRAM
        overhead = offload_overhead
    else:
        interface = _RecordedLatencyInterface(records)
        overhead = None

    faulted = ResilientReplayDevice(records, interface)
    for r in records:
        faulted.call(r.request)
    out["faulted_cycles"] = faulted.clock

    if codec_name == "protoacc-message":
        clean = ReplayDevice([(r.request, r.response) for r in records], interface, overhead)
        for r in records:
            clean.call(r.request)
        out["clean_cycles"] = clean.clock
        out["availability_overhead"] = (
            faulted.clock / clean.clock if clean.clock else float("inf")
        )
    return out


class _RecordedLatencyInterface(PerformanceInterface):
    """Replay stand-in when no real interface is known for the payload
    type: predicts each call at its recorded cost (in order)."""

    accelerator = "recorded"
    representation = "tape"

    def __init__(self, records: Sequence[CallRecord]):
        self._cycles = [r.cycles for r in records]
        self._next = 0

    def latency(self, item) -> float:
        cycles = self._cycles[self._next % len(self._cycles)]
        self._next += 1
        return cycles


def explain_tape(path: str | Path, *, top: int = 5) -> dict:
    """Offline causal attribution of a saved tape.

    Replays the records through
    :func:`repro.obs.attribution.attribute_records` (fault-free class
    medians as the compute baseline, DRAM-flavored fault excess charged
    to the memory stage) and folds the result per size class.  Returns
    a JSON-friendly report: per-class per-stage cycle totals, the
    slowest ``top`` records with their decomposition, and the exact-sum
    invariant verdict over every record.
    """
    from repro.obs.attribution import attribute_records
    from repro.obs.drift import DEFAULT_SIZE_CLASSES

    records = load_tape(path)
    attrs = attribute_records(records)
    exact = all(a.total == a.end_to_end for a in attrs)
    per_class: dict[str, dict] = {}
    for r, a in zip(records, attrs):
        label = DEFAULT_SIZE_CLASSES.classify(r.request)
        bucket = per_class.setdefault(
            label, {"count": 0, "stages": dict.fromkeys(("queue", "retry", "memory", "overhead", "compute"), 0.0)}
        )
        bucket["count"] += 1
        for stage, cycles in a.stages().items():
            bucket["stages"][stage] = bucket["stages"].get(stage, 0.0) + cycles
    slowest = sorted(attrs, key=lambda a: a.end_to_end, reverse=True)[:top]
    return {
        "records": len(records),
        "exact_sum": exact,
        "classes": per_class,
        "slowest": [
            {
                "index": a.seq,
                "path": a.path,
                "end_to_end": a.end_to_end,
                "stages": a.stages(),
            }
            for a in slowest
        ],
    }


def _main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.runtime.tape {replay,stats,explain} <tape.jsonl.gz>``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.tape",
        description="Inspect or replay a persisted serving tape.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    replay = sub.add_parser("replay", help="price a saved incident tape")
    replay.add_argument("tape", help="path to a .jsonl.gz tape from save_tape()")
    stats = sub.add_parser(
        "stats", help="per-size-class latency summary of a saved tape"
    )
    stats.add_argument("tape", help="path to a .jsonl.gz tape from save_tape()")
    stats.add_argument(
        "--tail",
        type=int,
        default=None,
        metavar="N",
        help="only the last N records (the healing loop's window view)",
    )
    explain = sub.add_parser(
        "explain",
        help="offline causal attribution: where each record's cycles went",
    )
    explain.add_argument("tape", help="path to a .jsonl.gz tape from save_tape()")
    explain.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="K",
        help="slowest records to list with full decomposition (default: 5)",
    )
    args = parser.parse_args(argv)

    if args.command == "replay":
        print(json.dumps(replay_saved_tape(args.tape), sort_keys=True))
        return 0

    if args.command == "explain":
        print(json.dumps(explain_tape(args.tape, top=args.top), sort_keys=True))
        return 0

    header = tape_header(args.tape)
    report = tape_stats(load_tape(args.tape), tail=args.tail)
    report["device"] = header.get("device")
    report["codec"] = header["codec"]
    print(json.dumps(report, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
