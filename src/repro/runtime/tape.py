"""Replay a faulted serving tape through the §5 record/replay machinery.

The paper's :class:`~repro.core.offload.OffloadEstimator` answers "what
end-to-end time would my application see if I offloaded?" under ideal
serving.  This module asks the production follow-up: *what does it see
when the accelerator misbehaves?*  A :class:`~repro.runtime.device.ResilientDevice`
run leaves a tape of :class:`~repro.runtime.device.CallRecord`s whose
``cycles`` already include fault penalties, watchdog waits, backoff, and
CPU-fallback time; replaying that tape charges those recorded costs
instead of the clean interface prediction, and the gap between the two
replays is the availability overhead of the fault environment.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.core.interface import PerformanceInterface
from repro.core.offload import Application, ReplayDevice

from .device import CallRecord, ResilientDevice

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")


class ResilientReplayDevice(ReplayDevice[RequestT, ResponseT]):
    """Phase-2 replay of a faulted tape: responses come from the
    records, and every call charges its *recorded* cycles — faults,
    retries, backoff, and fallback included — instead of the clean
    interface prediction.  Divergence detection is inherited from
    :class:`~repro.core.offload.ReplayDevice`.
    """

    def __init__(
        self,
        records: Sequence[CallRecord[RequestT, ResponseT]],
        interface: PerformanceInterface[RequestT],
    ):
        super().__init__([(r.request, r.response) for r in records], interface)
        self.records = list(records)

    def _charge(self, index: int, request: RequestT) -> float:
        return self.records[index - 1].cycles


@dataclass(frozen=True)
class ResilientOffloadEstimate:
    """Outcome of the three-phase faulted estimation."""

    clean_cycles: float  # replay under fault-free interface predictions
    faulted_cycles: float  # replay under the recorded faulted serving
    calls: int
    fallback_calls: int  # calls that degraded to the CPU path
    faults: int  # fault events encountered while recording

    @property
    def availability_overhead(self) -> float:
        """How much slower the faulted run is, end to end (>= ~1)."""
        if self.clean_cycles == 0:
            return float("inf")
        return self.faulted_cycles / self.clean_cycles


class ResilientOffloadEstimator(Generic[RequestT, ResponseT]):
    """Record once on a fault-injected served device, then replay twice.

    Phase 1 drives the application against a fresh
    :class:`ResilientDevice` (built by ``device_factory`` so repeated
    estimates start from cold breaker/drift state).  Phase 2 replays the
    tape charging recorded faulted cycles; phase 3 replays it charging
    the clean interface prediction plus ``invocation_overhead``.  Because
    accelerator invocations are pure, all three runs follow the same
    path — the §5 record/replay premise — even though some recorded
    calls were served by the CPU fallback.
    """

    def __init__(
        self,
        device_factory: Callable[[], ResilientDevice[RequestT, ResponseT]],
        interface: PerformanceInterface[RequestT],
        invocation_overhead: Callable[[RequestT], float] | None = None,
    ):
        self.device_factory = device_factory
        self.interface = interface
        self.invocation_overhead = invocation_overhead

    def estimate(self, application: Application) -> ResilientOffloadEstimate:
        device = self.device_factory()
        application(device)
        records = device.records

        faulted = ResilientReplayDevice(records, self.interface)
        application(faulted)

        clean: ReplayDevice[RequestT, ResponseT] = ReplayDevice(
            [(r.request, r.response) for r in records],
            self.interface,
            self.invocation_overhead,
        )
        application(clean)

        return ResilientOffloadEstimate(
            clean_cycles=clean.clock,
            faulted_cycles=faulted.clock,
            calls=len(records),
            fallback_calls=sum(r.path == "cpu" for r in records),
            faults=sum(len(r.faults) for r in records),
        )
