"""TVM-style auto-tuning for VTA, driven by pluggable profilers.

The paper's example #3: auto-tuning is bottlenecked by profiling, and a
Petri-net performance interface removes the bottleneck.  This package
provides the search (:mod:`.tuner`), the profiler tiers
(:mod:`.profilers`), and a learned cost model (:mod:`.costmodel`).
"""

from .costmodel import FEATURE_NAMES, LinearCostModel, features
from .profilers import (
    CycleAccurateProfiler,
    EventModelProfiler,
    MemoizedProfiler,
    PetriProfiler,
    Profiler,
    RooflineProfiler,
    SpeedupSample,
    profiling_speedups,
)
from .tuner import Candidate, TuneResult, anneal_tune, exhaustive_tune, random_tune

__all__ = [
    "FEATURE_NAMES",
    "Candidate",
    "CycleAccurateProfiler",
    "EventModelProfiler",
    "LinearCostModel",
    "MemoizedProfiler",
    "PetriProfiler",
    "Profiler",
    "RooflineProfiler",
    "SpeedupSample",
    "TuneResult",
    "anneal_tune",
    "exhaustive_tune",
    "features",
    "profiling_speedups",
    "random_tune",
]
