"""Profiler tiers for the auto-tuner (paper §2 example #3).

A profiler answers "how many cycles will this candidate schedule take?"
and keeps a wall-clock account of how long answering took — the
quantity the paper's TVM case study is about: auto-tuning is
bottlenecked by profiling, and a Petri-net interface answers the same
question orders of magnitude faster than cycle-accurate simulation.

Tiers (decreasing fidelity, increasing speed):

1. :class:`CycleAccurateProfiler` — synchronous per-cycle simulation
   (the Verilator stand-in).
2. :class:`EventModelProfiler` — the event-driven ground-truth model.
3. :class:`PetriProfiler` — the Petri-net performance interface.
4. :class:`RooflineProfiler` — the closed-form program interface.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.accel.vta import (
    Program,
    VtaConfig,
    VtaModel,
    latency_vta_roofline,
    petri_interface,
)
from repro.accel.vta.ticksim import TickVtaSimulator

if TYPE_CHECKING:
    from repro.perf import EvalCache


class Profiler(abc.ABC):
    """Latency oracle with wall-clock accounting."""

    name: str = "profiler"

    def __init__(self) -> None:
        self.wall_seconds = 0.0
        self.queries = 0

    def profile(self, program: Program) -> float:
        """Predicted/simulated cycles for ``program`` (wall time logged)."""
        start = time.perf_counter()
        try:
            return self._profile(program)
        finally:
            self.wall_seconds += time.perf_counter() - start
            self.queries += 1

    @abc.abstractmethod
    def _profile(self, program: Program) -> float:
        ...

    def profile_batch(self, programs: list[Program]) -> list[float]:
        """Cycles for every candidate, in input order (wall time logged).

        Default is a per-candidate loop; tiers backed by an interface
        with a batch engine override ``_profile_batch`` to answer the
        whole generation in one pass.
        """
        start = time.perf_counter()
        try:
            return self._profile_batch(programs)
        finally:
            self.wall_seconds += time.perf_counter() - start
            self.queries += len(programs)

    def _profile_batch(self, programs: list[Program]) -> list[float]:
        return [self._profile(p) for p in programs]

    def reset_accounting(self) -> None:
        self.wall_seconds = 0.0
        self.queries = 0


class CycleAccurateProfiler(Profiler):
    """Per-cycle simulation: cost grows with simulated cycles."""

    name = "cycle-accurate"

    def __init__(self, config: VtaConfig | None = None):
        super().__init__()
        self._sim = TickVtaSimulator(config)

    def _profile(self, program: Program) -> float:
        return self._sim.run(program).cycles


class EventModelProfiler(Profiler):
    """Event-driven ground truth (same timing as cycle-accurate)."""

    name = "event-model"

    def __init__(self, config: VtaConfig | None = None):
        super().__init__()
        self._model = VtaModel(config)

    def _profile(self, program: Program) -> float:
        return self._model.run(program).cycles


class PetriProfiler(Profiler):
    """The paper's proposal: profile against the Petri-net interface."""

    name = "petri-net"

    def __init__(self, config: VtaConfig | None = None):
        super().__init__()
        self._iface = petri_interface(config)

    def _profile(self, program: Program) -> float:
        return self._iface.latency(program)

    def _profile_batch(self, programs: list[Program]) -> list[float]:
        # One lowering, one engine pass over the whole generation.
        return self._iface.evaluate_batch(programs)


class MemoizedProfiler(Profiler):
    """Never profile the same candidate twice (Jung et al.'s "PR" idea).

    Wraps any profiler tier with a content-addressed
    :class:`repro.perf.EvalCache`: candidates are keyed by their program
    content, so re-visited points in a tuning sweep cost a dictionary
    lookup instead of a simulation.  Wall-clock accounting still runs, so
    ``profiling_speedups`` sees the (near-zero) cost of cache hits.
    """

    def __init__(self, inner: Profiler, cache: "EvalCache | None" = None):
        from repro.perf import EvalCache

        super().__init__()
        self.inner = inner
        self.cache = cache if cache is not None else EvalCache()
        self.name = f"memoized({inner.name})"

    def _profile(self, program: Program) -> float:
        return self.cache.get_or_compute(
            f"profiler:{self.inner.name}",
            program,
            lambda: self.inner._profile(program),
        )

    def _profile_batch(self, programs: list[Program]) -> list[float]:
        """Look every candidate up first, then batch only the misses
        through the inner tier — so memoization and batching compose."""
        namespace = f"profiler:{self.inner.name}"
        out: list[float | None] = [None] * len(programs)
        misses: list[int] = []
        for i, program in enumerate(programs):
            hit = self.cache.get(namespace, program)
            if hit is self.cache.MISS:
                misses.append(i)
            else:
                out[i] = hit
        if misses:
            computed = self.inner._profile_batch([programs[i] for i in misses])
            for i, value in zip(misses, computed):
                self.cache.put(namespace, programs[i], value)
                out[i] = value
        return out  # type: ignore[return-value]

    def cache_summary(self) -> str:
        """Hit/miss accounting for reports (e.g. the E6 table)."""
        return self.cache.stats.summary()


class RooflineProfiler(Profiler):
    """Closed-form estimate: near-free, no dependency stalls."""

    name = "roofline"

    def __init__(self, config: VtaConfig | None = None):
        super().__init__()
        self._config = config or VtaConfig()

    def _profile(self, program: Program) -> float:
        return latency_vta_roofline(program, self._config)


@dataclass(frozen=True)
class SpeedupSample:
    """Profiling-time comparison for one schedule."""

    program: str
    cycles: float
    baseline_seconds: float
    candidate_seconds: float

    @property
    def speedup(self) -> float:
        if self.candidate_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.candidate_seconds


def profiling_speedups(
    baseline: Profiler, candidate: Profiler, programs: list[Program]
) -> list[SpeedupSample]:
    """Per-program wall-clock speedup of ``candidate`` over ``baseline``
    (the paper's 1312x/2.1x numbers are the max/min of this list)."""
    samples = []
    for program in programs:
        b0, q0 = baseline.wall_seconds, candidate.wall_seconds
        cycles = baseline.profile(program)
        candidate.profile(program)
        samples.append(
            SpeedupSample(
                program=program.name,
                cycles=cycles,
                baseline_seconds=baseline.wall_seconds - b0,
                candidate_seconds=candidate.wall_seconds - q0,
            )
        )
    return samples
