"""A learned cost model, as in TVM's second auto-tuning step.

TVM extracts a program-specific cost model from profiled samples and
lets the search query the model instead of the hardware.  We implement
the same idea with a least-squares linear model over schedule features;
it is trained on whatever profiler the tuner uses (with a Petri-net
interface, training data becomes cheap — the paper's point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.vta import Opcode, Program

FEATURE_NAMES = (
    "total_macs",
    "dram_bytes",
    "n_instructions",
    "n_gemm",
    "n_alu",
    "n_loads",
    "n_stores",
    "alu_lanes_work",
)


def features(program: Program) -> np.ndarray:
    """Schedule features driving VTA latency (all counts, no timing)."""
    n_gemm = n_alu = n_loads = n_stores = 0
    alu_work = 0
    for insn in program.instructions:
        if insn.op is Opcode.GEMM:
            n_gemm += 1
        elif insn.op is Opcode.ALU:
            n_alu += 1
            alu_work += insn.iterations * insn.vector_len
        elif insn.op is Opcode.LOAD:
            n_loads += 1
        elif insn.op is Opcode.STORE:
            n_stores += 1
    return np.array(
        [
            program.total_macs,
            program.dram_bytes,
            len(program),
            n_gemm,
            n_alu,
            n_loads,
            n_stores,
            alu_work,
        ],
        dtype=float,
    )


@dataclass
class LinearCostModel:
    """cycles ~ w . features + b, fit by least squares."""

    weights: np.ndarray | None = None
    intercept: float = 0.0

    def fit(self, programs: list[Program], cycles: list[float]) -> LinearCostModel:
        if len(programs) != len(cycles) or len(programs) < 2:
            raise ValueError("need >= 2 (program, cycles) samples of equal length")
        x = np.stack([features(p) for p in programs])
        x = np.hstack([x, np.ones((x.shape[0], 1))])
        y = np.asarray(cycles, dtype=float)
        solution, *_ = np.linalg.lstsq(x, y, rcond=None)
        self.weights = solution[:-1]
        self.intercept = float(solution[-1])
        return self

    def predict(self, program: Program) -> float:
        if self.weights is None:
            raise RuntimeError("cost model is not fitted")
        return float(features(program) @ self.weights + self.intercept)

    def score(self, programs: list[Program], cycles: list[float]) -> float:
        """Mean relative error on a held-out set."""
        errors = [
            abs(self.predict(p) - c) / c for p, c in zip(programs, cycles, strict=True) if c > 0
        ]
        return sum(errors) / len(errors)
