"""Schedule search: the auto-tuning loop of the paper's example #3.

Given a GEMM workload, the tuner searches the space of legal tilings
(and post-op choices), asking a :class:`~repro.autotune.profilers.Profiler`
for each candidate's cycles.  Three strategies:

* :func:`exhaustive_tune` — evaluate every legal tiling.
* :func:`random_tune` — sample a budget of candidates.
* :func:`anneal_tune` — simulated annealing over the tiling lattice
  (deterministic given the seed), like TVM's learning-based search.

The returned record keeps the full profiling-time account, so the E6
benchmark can show the same search completing orders of magnitude
faster when driven by the Petri-net interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.vta import (
    GemmWorkload,
    Program,
    Tiling,
    legal_tilings,
    tiled_gemm_program,
)

from .profilers import Profiler


@dataclass(frozen=True)
class Candidate:
    """One point of the search space."""

    tiling: Tiling
    alu_relu: bool = True

    def lower(self, work: GemmWorkload) -> Program:
        return tiled_gemm_program(work, self.tiling, alu_relu=self.alu_relu)


@dataclass
class TuneResult:
    """Outcome of one search."""

    workload: GemmWorkload
    best: Candidate
    best_cycles: float
    trials: int
    profiling_seconds: float
    history: list[tuple[Candidate, float]] = field(repr=False, default_factory=list)

    def summary(self) -> str:
        t = self.best.tiling
        return (
            f"best tiling {t.tm}x{t.tk}x{t.tn} -> {self.best_cycles:.0f} cycles "
            f"({self.trials} trials, {self.profiling_seconds * 1e3:.1f} ms profiling)"
        )


def _evaluate(
    work: GemmWorkload, candidates: list[Candidate], profiler: Profiler
) -> TuneResult:
    start_wall = profiler.wall_seconds
    # The candidate set is known up front (exhaustive/random search), so
    # profile it as one batch — interface-backed tiers lower their net
    # once and answer the whole generation in a single engine pass.
    # (anneal_tune stays sequential: each step depends on the last.)
    all_cycles = profiler.profile_batch([cand.lower(work) for cand in candidates])
    history = list(zip(candidates, all_cycles))
    best, best_cycles = min(history, key=lambda h: h[1])
    return TuneResult(
        workload=work,
        best=best,
        best_cycles=best_cycles,
        trials=len(history),
        profiling_seconds=profiler.wall_seconds - start_wall,
        history=history,
    )


def exhaustive_tune(work: GemmWorkload, profiler: Profiler) -> TuneResult:
    """Evaluate every legal tiling (feasible with a fast profiler —
    which is exactly what an interface provides)."""
    candidates = [Candidate(t) for t in legal_tilings(work)]
    return _evaluate(work, candidates, profiler)


def random_tune(
    work: GemmWorkload, profiler: Profiler, budget: int, seed: int = 0
) -> TuneResult:
    """Profile ``budget`` uniformly-sampled candidates."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    rng = np.random.default_rng(seed)
    space = legal_tilings(work)
    picks = rng.choice(len(space), size=min(budget, len(space)), replace=False)
    candidates = [Candidate(space[int(i)]) for i in picks]
    return _evaluate(work, candidates, profiler)


def anneal_tune(
    work: GemmWorkload,
    profiler: Profiler,
    *,
    steps: int = 40,
    seed: int = 0,
    initial_temp: float = 0.3,
) -> TuneResult:
    """Simulated annealing on the tiling lattice.

    Neighbors double/halve one tile dimension (staying legal).  The
    acceptance temperature is relative to the current cycles, so the
    schedule-quality scale is self-normalizing.
    """
    rng = np.random.default_rng(seed)
    space = legal_tilings(work)
    if not space:
        raise ValueError("workload has no legal tilings")
    index = {(t.tm, t.tk, t.tn): t for t in space}

    def neighbors(t: Tiling) -> list[Tiling]:
        out = []
        for dim in ("tm", "tk", "tn"):
            for factor in (2, 0.5):
                new = {d: getattr(t, d) for d in ("tm", "tk", "tn")}
                new[dim] = int(new[dim] * factor)
                cand = index.get((new["tm"], new["tk"], new["tn"]))
                if cand is not None:
                    out.append(cand)
        return out

    start_wall = profiler.wall_seconds
    current = space[int(rng.integers(0, len(space)))]
    current_cycles = profiler.profile(Candidate(current).lower(work))
    history = [(Candidate(current), current_cycles)]
    best, best_cycles = current, current_cycles

    temp = initial_temp
    for _ in range(steps):
        options = neighbors(current)
        if not options:
            break
        nxt = options[int(rng.integers(0, len(options)))]
        cycles = profiler.profile(Candidate(nxt).lower(work))
        history.append((Candidate(nxt), cycles))
        accept = cycles < current_cycles or rng.random() < np.exp(
            -(cycles - current_cycles) / (temp * current_cycles)
        )
        if accept:
            current, current_cycles = nxt, cycles
            if cycles < best_cycles:
                best, best_cycles = nxt, cycles
        temp *= 0.95
    return TuneResult(
        workload=work,
        best=Candidate(best),
        best_cycles=best_cycles,
        trials=len(history),
        profiling_seconds=profiler.wall_seconds - start_wall,
        history=history,
    )
